package bench

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/relstore"
)

// DefaultKs is the top-k sweep used by Figures 1–6 (the paper's x axis
// runs to 300).
var DefaultKs = []int{1, 50, 100, 150, 200, 250, 300}

// FigureSpec describes one of the paper's six runtime-vs-k figures.
type FigureSpec struct {
	ID      string
	Title   string
	Dataset DatasetKind
	Rel     RelevanceKind
	R       float64 // blacking ratio
	Agg     core.Aggregate
	Gamma   float64 // LONA-Backward threshold
}

// PaperFigures are the exact parameterizations of Figures 1–6: 2-hop
// queries, r=0.01 mixture relevance everywhere except Figure 3, which the
// paper runs at r=0.2 on the intrusion network (binary-heavy scores).
var PaperFigures = []FigureSpec{
	{ID: "F1", Title: "Fig. 1 Collaboration (SUM)", Dataset: Collaboration, Rel: MixtureScores, R: 0.01, Agg: core.Sum, Gamma: 0.1},
	{ID: "F2", Title: "Fig. 2 Citation (SUM)", Dataset: Citation, Rel: MixtureScores, R: 0.01, Agg: core.Sum, Gamma: 0.1},
	{ID: "F3", Title: "Fig. 3 Intrusion (SUM)", Dataset: Intrusion, Rel: BinaryScores, R: 0.2, Agg: core.Sum, Gamma: 0.5},
	{ID: "F4", Title: "Fig. 4 Collaboration (AVG)", Dataset: Collaboration, Rel: MixtureScores, R: 0.01, Agg: core.Avg, Gamma: 0.1},
	{ID: "F5", Title: "Fig. 5 Citation (AVG)", Dataset: Citation, Rel: MixtureScores, R: 0.01, Agg: core.Avg, Gamma: 0.1},
	{ID: "F6", Title: "Fig. 6 Intrusion (AVG)", Dataset: Intrusion, Rel: MixtureScores, R: 0.01, Agg: core.Avg, Gamma: 0.1},
}

// figureAlgos are the three lines each paper figure plots.
var figureAlgos = []core.Algorithm{core.AlgoBase, core.AlgoForward, core.AlgoBackward}

// hops is the paper's query radius ("We tested 2-hop queries").
const hops = 2

// OrderFor picks LONA-Forward's queue order per aggregate: high-degree
// nodes have the largest SUMs, so evaluating them first raises the pruning
// threshold immediately; for AVG the winners are high-relevance nodes with
// small keen neighborhoods, so score order raises it instead.
func OrderFor(agg core.Aggregate) core.QueueOrder {
	if agg == core.Avg {
		return core.OrderScoreDesc
	}
	return core.OrderDegreeDesc
}

// RunFigure executes one of Figures 1–6 and returns its grid.
func (w *Workspace) RunFigure(spec FigureSpec) (*Result, error) {
	e, err := w.Engine(spec.Dataset, spec.Rel, spec.R, hops)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:    spec.ID,
		Title: spec.Title,
		XName: "k",
		Notes: fmt.Sprintf("%v: %d nodes, %d edges; h=%d, r=%v, γ=%v, scale=%v",
			spec.Dataset, e.Graph().NumNodes(), e.Graph().NumEdges(), hops, spec.R, spec.Gamma, w.cfg.Scale),
	}
	for _, k := range DefaultKs {
		for _, algo := range figureAlgos {
			var stats core.QueryStats
			sec, err := w.timeQuery(func() error {
				ans, err := e.Run(context.Background(), core.Query{
					Algorithm: algo, K: k, Aggregate: spec.Agg,
					Options: core.Options{Gamma: spec.Gamma, Order: OrderFor(spec.Agg)},
				})
				stats = ans.Stats
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("%s k=%d %v: %w", spec.ID, k, algo, err)
			}
			res.Rows = append(res.Rows, Row{
				X: float64(k), Label: algo.String(), Sec: sec,
				Extra: map[string]float64{
					"evaluated": float64(stats.Evaluated),
					"pruned":    float64(stats.Pruned),
					"visited":   float64(stats.Visited),
				},
			})
			w.logf("%s k=%d %-14s %.4fs (evaluated=%d pruned=%d)", spec.ID, k, algo, sec, stats.Evaluated, stats.Pruned)
		}
	}
	return res, nil
}

// RunBlackingSweep is ablation A1: fix k, sweep the blacking ratio r, and
// watch the algorithms trade places (Backward thrives on sparse scores;
// Forward's Eq. 1 bound loosens as r falls — the effect the paper notes
// for AVG queries).
func (w *Workspace) RunBlackingSweep() (*Result, error) {
	res := &Result{
		ID:    "A1",
		Title: "Ablation: blacking ratio sweep (Collaboration, SUM, k=100)",
		XName: "r",
	}
	for _, r := range []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.2} {
		e, err := w.Engine(Collaboration, MixtureScores, r, hops)
		if err != nil {
			return nil, err
		}
		for _, algo := range figureAlgos {
			sec, err := w.timeQuery(func() error {
				_, err := e.Run(context.Background(), core.Query{
					Algorithm: algo, K: 100, Aggregate: core.Sum,
					Options: core.Options{Gamma: 0.2, Order: core.OrderDegreeDesc},
				})
				return err
			})
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, Row{X: r, Label: algo.String(), Sec: sec})
			w.logf("A1 r=%v %-14s %.4fs", r, algo, sec)
		}
	}
	return res, nil
}

// RunGammaSweep is ablation A2: LONA-Backward's distribution threshold γ
// trades distribution work (low γ distributes more nodes) against bound
// tightness (high γ forces more verification).
func (w *Workspace) RunGammaSweep() (*Result, error) {
	e, err := w.Engine(Collaboration, MixtureScores, 0.01, hops)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:    "A2",
		Title: "Ablation: backward threshold γ sweep (Collaboration, SUM, k=100)",
		XName: "gamma",
	}
	for _, gamma := range []float64{0, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9} {
		var stats core.QueryStats
		sec, err := w.timeQuery(func() error {
			var err error
			_, stats, err = e.Backward(100, core.Sum, gamma)
			return err
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Row{
			X: gamma, Label: "Backward", Sec: sec,
			Extra: map[string]float64{
				"distributed": float64(stats.Distributed),
				"verified":    float64(stats.Evaluated),
			},
		})
		w.logf("A2 γ=%v %.4fs (distributed=%d verified=%d)", gamma, sec, stats.Distributed, stats.Evaluated)
	}
	return res, nil
}

// RunHopSweep is ablation A3: hop radius h ∈ {1,2,3}. Neighborhood sizes
// explode with h (the m^h·|V| cost the problem statement cites), which is
// why the paper evaluates h=2.
func (w *Workspace) RunHopSweep() (*Result, error) {
	res := &Result{
		ID:    "A3",
		Title: "Ablation: hop radius sweep (Collaboration, SUM, k=100)",
		XName: "h",
	}
	for _, h := range []int{1, 2, 3} {
		e, err := w.Engine(Collaboration, MixtureScores, 0.01, h)
		if err != nil {
			return nil, err
		}
		for _, algo := range figureAlgos {
			sec, err := w.timeQuery(func() error {
				_, err := e.Run(context.Background(), core.Query{
					Algorithm: algo, K: 100, Aggregate: core.Sum,
					Options: core.Options{Gamma: 0.2, Order: core.OrderDegreeDesc},
				})
				return err
			})
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, Row{X: float64(h), Label: algo.String(), Sec: sec})
			w.logf("A3 h=%d %-14s %.4fs", h, algo, sec)
		}
	}
	return res, nil
}

// RunOrderSweep is ablation A4: LONA-Forward's queue order. Processing
// likely-large aggregates first raises the pruning threshold sooner.
func (w *Workspace) RunOrderSweep() (*Result, error) {
	e, err := w.Engine(Collaboration, MixtureScores, 0.01, hops)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:    "A4",
		Title: "Ablation: forward queue order (Collaboration, SUM, k=100)",
		XName: "k",
	}
	for _, k := range []int{10, 100, 300} {
		for _, order := range []core.QueueOrder{core.OrderNatural, core.OrderDegreeDesc, core.OrderScoreDesc} {
			var stats core.QueryStats
			sec, err := w.timeQuery(func() error {
				var err error
				_, stats, err = e.Forward(k, core.Sum, order)
				return err
			})
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, Row{
				X: float64(k), Label: order.String(), Sec: sec,
				Extra: map[string]float64{"pruned": float64(stats.Pruned)},
			})
			w.logf("A4 k=%d %-12s %.4fs (pruned=%d)", k, order, sec, stats.Pruned)
		}
	}
	return res, nil
}

// RunRelational is experiment A5: the introduction's motivating claim.
// A relational plan (edge-table self-join + group-by + order-limit) versus
// graph-native Base and LONA-Forward on the same query. The relational
// engine materializes the distinct 2-hop reachability relation, which is
// exactly why "the existing implementation of aggregation operations on
// relational databases does not guarantee superior performance in network
// space".
func (w *Workspace) RunRelational() (*Result, error) {
	// The relational plan materializes |V|·avg(N) rows; run it on a
	// reduced collaboration graph so A5 finishes in seconds.
	sub := NewWorkspace(Config{Scale: w.cfg.Scale * 0.25, Seed: w.cfg.Seed, Repeats: w.cfg.Repeats, Workers: w.cfg.Workers})
	sub.Logf = w.Logf
	res := &Result{
		ID:    "A5",
		Title: "Motivation: RDBMS edge-table self-join vs graph-native (k=100)",
		XName: "h",
	}
	for _, h := range []int{1, 2} {
		e, err := sub.Engine(Collaboration, MixtureScores, 0.01, h)
		if err != nil {
			return nil, err
		}
		if h == 1 {
			res.Notes = fmt.Sprintf("Collaboration at scale %v: %d nodes, %d edges",
				sub.cfg.Scale, e.Graph().NumNodes(), e.Graph().NumEdges())
		}
		g, scores := e.Graph(), e.Scores()

		sec, err := sub.timeQuery(func() error {
			_, err := relstore.NeighborhoodTopK(g, scores, h, 100, false)
			return err
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Row{X: float64(h), Label: "RDBMS-plan", Sec: sec})
		w.logf("A5 h=%d RDBMS-plan %.4fs", h, sec)

		for _, algo := range []core.Algorithm{core.AlgoBase, core.AlgoForward} {
			sec, err := sub.timeQuery(func() error {
				_, err := e.Run(context.Background(), core.Query{
					Algorithm: algo, K: 100, Aggregate: core.Sum,
					Options: core.Options{Order: core.OrderDegreeDesc},
				})
				return err
			})
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, Row{X: float64(h), Label: algo.String(), Sec: sec})
			w.logf("A5 h=%d %-14s %.4fs", h, algo, sec)
		}
	}
	return res, nil
}

// RunPartitioned is experiment A6: the future-work infrastructure. It
// partitions the collaboration network into 1..8 parts and runs the
// distributed Base executor, reporting wall clock, messages, and edge cut.
func (w *Workspace) RunPartitioned() (*Result, error) {
	g, err := w.Graph(Collaboration)
	if err != nil {
		return nil, err
	}
	scores, err := w.Scores(g, MixtureScores, 0.01)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:    "A6",
		Title: "Future work: partitioned execution (Collaboration, SUM, k=100)",
		XName: "parts",
		Notes: fmt.Sprintf("%d nodes, %d edges; BFS-grown partitions", g.NumNodes(), g.NumEdges()),
	}
	for _, parts := range []int{1, 2, 4, 8} {
		for _, refined := range []bool{false, true} {
			p, err := partition.BFSGrow(g, parts)
			if err != nil {
				return nil, err
			}
			label := "BFS-grow"
			if refined {
				partition.Refine(g, p, 1.3, 3)
				label = "BFS-grow+refine"
			}
			x, err := partition.NewExecutor(g, scores, hops, p)
			if err != nil {
				return nil, err
			}
			var stats partition.Stats
			sec, err := w.timeQuery(func() error {
				var err error
				_, stats, err = x.Run(context.Background(), core.Query{K: 100, Aggregate: core.Sum})
				return err
			})
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, Row{
				X: float64(parts), Label: label, Sec: sec,
				Extra: map[string]float64{
					"messages": float64(stats.Messages),
					"edge_cut": float64(stats.EdgeCut),
					"max_work": float64(stats.MaxPartWork),
				},
			})
			w.logf("A6 parts=%d %-16s %.4fs (messages=%d cut=%d)", parts, label, sec, stats.Messages, stats.EdgeCut)
		}
	}
	return res, nil
}

// RunDistBound is ablation A7: the index-free distribution bound
// (property 2 of the paper's abstract) against Equation 1's
// differential-index bound and Base. The distribution bound needs no
// per-edge index but only bites when neighborhood sizes are skewed enough
// that top(N(v)) undercuts the k-th aggregate.
func (w *Workspace) RunDistBound() (*Result, error) {
	res := &Result{
		ID:    "A7",
		Title: "Ablation: distribution bound vs differential index (SUM, k=100)",
		XName: "k",
	}
	for _, dataset := range []DatasetKind{Collaboration, Intrusion} {
		rel, r := MixtureScores, 0.01
		if dataset == Intrusion {
			rel, r = BinaryScores, 0.2
		}
		e, err := w.Engine(dataset, rel, r, hops)
		if err != nil {
			return nil, err
		}
		for _, k := range []int{10, 100, 300} {
			for _, algo := range []core.Algorithm{core.AlgoBase, core.AlgoForward, core.AlgoForwardDist} {
				var stats core.QueryStats
				sec, err := w.timeQuery(func() error {
					ans, err := e.Run(context.Background(), core.Query{
						Algorithm: algo, K: k, Aggregate: core.Sum,
						Options: core.Options{Order: core.OrderDegreeDesc},
					})
					stats = ans.Stats
					return err
				})
				if err != nil {
					return nil, err
				}
				res.Rows = append(res.Rows, Row{
					X: float64(k), Label: fmt.Sprintf("%s/%s", dataset, algo), Sec: sec,
					Extra: map[string]float64{"evaluated": float64(stats.Evaluated)},
				})
				w.logf("A7 %v k=%d %-14s %.4fs (evaluated=%d)", dataset, k, algo, sec, stats.Evaluated)
			}
		}
	}
	return res, nil
}

// ExperimentIDs lists every runnable experiment in canonical order.
func ExperimentIDs() []string {
	ids := make([]string, 0, len(PaperFigures)+7)
	for _, f := range PaperFigures {
		ids = append(ids, f.ID)
	}
	ids = append(ids, "A1", "A2", "A3", "A4", "A5", "A6", "A7", "S1", "S2", "S3", "S4", "S5")
	return ids
}

// Run executes the experiment with the given id.
func (w *Workspace) Run(id string) (*Result, error) {
	for _, f := range PaperFigures {
		if f.ID == id {
			return w.RunFigure(f)
		}
	}
	switch id {
	case "A1":
		return w.RunBlackingSweep()
	case "A2":
		return w.RunGammaSweep()
	case "A3":
		return w.RunHopSweep()
	case "A4":
		return w.RunOrderSweep()
	case "A5":
		return w.RunRelational()
	case "A6":
		return w.RunPartitioned()
	case "A7":
		return w.RunDistBound()
	case "S1":
		return w.RunServing()
	case "S2":
		return w.RunCluster()
	case "S3":
		return w.RunMutation()
	case "S4":
		return w.RunStream()
	case "S5":
		return w.RunSnapshot()
	default:
		known := ExperimentIDs()
		sort.Strings(known)
		return nil, fmt.Errorf("bench: unknown experiment %q (known: %v)", id, known)
	}
}
