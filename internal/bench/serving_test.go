package bench

import "testing"

// TestRunServingSmoke runs S1 on a small-but-real dataset and checks the
// acceptance bar: cached-query p50 at least 10× below cold-query p50. The
// gap is normally three orders of magnitude (a map lookup vs a pruned
// engine query), so 10× leaves ample headroom for noisy CI machines.
func TestRunServingSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("serving benchmark takes seconds")
	}
	w := NewWorkspace(Config{Scale: 0.1, Seed: 42, Workers: 2})
	res, sum, err := w.RunServingDetailed()
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "S1" || len(res.Rows) != 3 {
		t.Fatalf("unexpected result shape: id=%s rows=%d", res.ID, len(res.Rows))
	}
	for _, label := range []string{"cold", "cached", "post-update"} {
		if _, ok := res.cell(float64(sum.K), label); !ok {
			t.Fatalf("missing %q row", label)
		}
	}
	if sum.ColdP50US <= 0 || sum.CachedP50US <= 0 || sum.PostUpdateP50US <= 0 {
		t.Fatalf("non-positive latencies: %+v", sum)
	}
	if sum.SpeedupP50 < 10 {
		t.Fatalf("cached p50 (%.1fµs) is only %.1f× below cold p50 (%.1fµs); want >= 10×",
			sum.CachedP50US, sum.SpeedupP50, sum.ColdP50US)
	}
	if sum.CachedQPS <= 0 {
		t.Fatalf("QPS = %v", sum.CachedQPS)
	}
	if sum.CacheHitRate <= 0.5 {
		t.Fatalf("hit rate %.3f suspiciously low for a repeat-heavy run", sum.CacheHitRate)
	}
	// The markdown/CSV renderers must accept the grid.
	if res.Markdown() == "" || res.CSV() == "" {
		t.Fatal("empty rendering")
	}
}
