// Package bench is the experiment harness that regenerates every figure in
// the paper's evaluation (Figures 1–6: runtime vs top-k for SUM and AVG on
// the collaboration, citation, and intrusion networks) plus the ablation
// studies DESIGN.md defines (A1–A6). Each experiment produces a Result —
// an (x, series-label) → seconds grid — that renders to markdown or CSV;
// cmd/lonabench drives it, and the repository-root benchmarks wrap the
// same specs in testing.B form.
package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/relevance"
)

// DatasetKind names one of the simulated evaluation graphs.
type DatasetKind uint8

const (
	// Collaboration is the cond-mat 2005 stand-in (DESIGN.md §4).
	Collaboration DatasetKind = iota
	// Citation is the cite75_99 stand-in.
	Citation
	// Intrusion is the IPsec stand-in.
	Intrusion
)

// String names the dataset as the paper's figures do.
func (d DatasetKind) String() string {
	switch d {
	case Collaboration:
		return "Collaboration"
	case Citation:
		return "Citation"
	case Intrusion:
		return "Intrusion"
	default:
		return fmt.Sprintf("DatasetKind(%d)", uint8(d))
	}
}

// build generates the dataset at the given scale.
func (d DatasetKind) build(scale float64, seed int64) (*graph.Graph, error) {
	switch d {
	case Collaboration:
		return gen.Collaboration(gen.DatasetScale(scale), seed), nil
	case Citation:
		return gen.Citation(gen.DatasetScale(scale), seed), nil
	case Intrusion:
		return gen.Intrusion(gen.DatasetScale(scale), seed), nil
	default:
		return nil, fmt.Errorf("bench: unknown dataset %v", d)
	}
}

// Config controls a harness session.
type Config struct {
	// Scale multiplies every dataset's size. 1.0 is the default
	// experiment scale documented in DESIGN.md §4; smaller values give
	// quick smoke runs.
	Scale float64
	// Seed drives dataset generation and relevance assignment.
	Seed int64
	// Repeats runs each timed query this many times, keeping the minimum
	// (standard noise suppression). <=1 means once.
	Repeats int
	// Workers for parallel baselines and index builds (<=0 = GOMAXPROCS).
	Workers int
}

func (c Config) normalized() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 20100301 // ICDE 2010 conference date
	}
	if c.Repeats <= 0 {
		c.Repeats = 1
	}
	return c
}

// Workspace memoizes generated datasets, relevance vectors, and prepared
// engines across the experiments of one session, so running all twelve
// figures pays each dataset and index build once.
type Workspace struct {
	cfg     Config
	graphs  map[string]*graph.Graph
	engines map[string]*core.Engine
	// Logf receives progress lines (nil silences them).
	Logf func(format string, args ...any)
}

// NewWorkspace returns an empty workspace for the configuration.
func NewWorkspace(cfg Config) *Workspace {
	return &Workspace{
		cfg:     cfg.normalized(),
		graphs:  make(map[string]*graph.Graph),
		engines: make(map[string]*core.Engine),
	}
}

// Config returns the normalized session configuration.
func (w *Workspace) Config() Config { return w.cfg }

func (w *Workspace) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

// Graph returns the memoized dataset.
func (w *Workspace) Graph(kind DatasetKind) (*graph.Graph, error) {
	key := fmt.Sprintf("%v@%v", kind, w.cfg.Scale)
	if g, ok := w.graphs[key]; ok {
		return g, nil
	}
	start := time.Now()
	g, err := kind.build(w.cfg.Scale, w.cfg.Seed)
	if err != nil {
		return nil, err
	}
	w.logf("generated %v: %d nodes, %d edges (%.1fs)",
		kind, g.NumNodes(), g.NumEdges(), time.Since(start).Seconds())
	w.graphs[key] = g
	return g, nil
}

// RelevanceKind selects how scores are assigned.
type RelevanceKind uint8

const (
	// MixtureScores is the paper's f = mix(f_r, f_w) evaluation function.
	MixtureScores RelevanceKind = iota
	// BinaryScores is the sparse 0/1 function (blacked nodes only).
	BinaryScores
)

// Scores builds a relevance vector for g.
func (w *Workspace) Scores(g *graph.Graph, kind RelevanceKind, r float64) ([]float64, error) {
	switch kind {
	case MixtureScores:
		return relevance.Mixture(g, relevance.MixtureParams{BlackingRatio: r}, w.cfg.Seed+1), nil
	case BinaryScores:
		return relevance.Binary(g.NumNodes(), r, w.cfg.Seed+1), nil
	default:
		return nil, fmt.Errorf("bench: unknown relevance kind %d", kind)
	}
}

// Engine returns a memoized engine with both indexes prepared, so query
// timings exclude index construction (the paper's differential index "needs
// to be pre-computed and stored").
func (w *Workspace) Engine(dataset DatasetKind, rel RelevanceKind, r float64, h int) (*core.Engine, error) {
	key := fmt.Sprintf("%v@%v/rel%d-r%v/h%d", dataset, w.cfg.Scale, rel, r, h)
	if e, ok := w.engines[key]; ok {
		return e, nil
	}
	g, err := w.Graph(dataset)
	if err != nil {
		return nil, err
	}
	scores, err := w.Scores(g, rel, r)
	if err != nil {
		return nil, err
	}
	e, err := core.NewEngine(g, scores, h)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	e.PrepareNeighborhoodIndex(w.cfg.Workers)
	nixDur := time.Since(start)
	start = time.Now()
	e.PrepareDifferentialIndex(w.cfg.Workers)
	w.logf("%s: N-index %.1fs, differential index %.1fs",
		key, nixDur.Seconds(), time.Since(start).Seconds())
	w.engines[key] = e
	return e, nil
}

// Row is one measured cell of an experiment grid.
type Row struct {
	X     float64            // sweep coordinate (k, r, γ, h, parts…)
	Label string             // series label (algorithm, order…)
	Sec   float64            // wall-clock seconds (min over repeats)
	Extra map[string]float64 // experiment-specific counters
}

// Result is a completed experiment: a grid of rows plus presentation
// metadata.
type Result struct {
	ID    string // experiment id (F1…F6, A1…A6)
	Title string // paper caption, e.g. "Fig. 1 Collaboration (SUM)"
	XName string // sweep axis name for reports
	Notes string // dataset sizes, fixed parameters
	Rows  []Row
}

// Labels returns the distinct series labels in first-appearance order.
func (r *Result) Labels() []string {
	var labels []string
	seen := map[string]bool{}
	for _, row := range r.Rows {
		if !seen[row.Label] {
			seen[row.Label] = true
			labels = append(labels, row.Label)
		}
	}
	return labels
}

// Xs returns the sorted distinct sweep coordinates.
func (r *Result) Xs() []float64 {
	seen := map[float64]bool{}
	var xs []float64
	for _, row := range r.Rows {
		if !seen[row.X] {
			seen[row.X] = true
			xs = append(xs, row.X)
		}
	}
	sort.Float64s(xs)
	return xs
}

// cell finds the row at (x, label).
func (r *Result) cell(x float64, label string) (Row, bool) {
	for _, row := range r.Rows {
		if row.X == x && row.Label == label {
			return row, true
		}
	}
	return Row{}, false
}

// Markdown renders the grid as a pivot table (x down, labels across).
func (r *Result) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", r.ID, r.Title)
	if r.Notes != "" {
		fmt.Fprintf(&b, "%s\n\n", r.Notes)
	}
	labels := r.Labels()
	fmt.Fprintf(&b, "| %s |", r.XName)
	for _, l := range labels {
		fmt.Fprintf(&b, " %s (s) |", l)
	}
	b.WriteString("\n|---|")
	for range labels {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, x := range r.Xs() {
		fmt.Fprintf(&b, "| %v |", trimFloat(x))
		for _, l := range labels {
			if row, ok := r.cell(x, l); ok {
				fmt.Fprintf(&b, " %.4f |", row.Sec)
			} else {
				b.WriteString(" – |")
			}
		}
		b.WriteString("\n")
	}
	// Extras, if any series carries them.
	extraKeys := map[string]bool{}
	for _, row := range r.Rows {
		for k := range row.Extra {
			extraKeys[k] = true
		}
	}
	if len(extraKeys) > 0 {
		keys := make([]string, 0, len(extraKeys))
		for k := range extraKeys {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(&b, "\n| %s | label |", r.XName)
		for _, k := range keys {
			fmt.Fprintf(&b, " %s |", k)
		}
		b.WriteString("\n|---|---|")
		for range keys {
			b.WriteString("---|")
		}
		b.WriteString("\n")
		for _, row := range r.Rows {
			if len(row.Extra) == 0 {
				continue
			}
			fmt.Fprintf(&b, "| %v | %s |", trimFloat(row.X), row.Label)
			for _, k := range keys {
				fmt.Fprintf(&b, " %v |", trimFloat(row.Extra[k]))
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// CSV renders rows as "id,x,label,seconds".
func (r *Result) CSV() string {
	var b strings.Builder
	b.WriteString("experiment,x,label,seconds\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s,%v,%s,%.6f\n", r.ID, trimFloat(row.X), row.Label, row.Sec)
	}
	return b.String()
}

func trimFloat(f float64) string {
	s := fmt.Sprintf("%.4f", f)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// timeQuery runs fn cfg.Repeats times and returns the fastest wall clock.
func (w *Workspace) timeQuery(fn func() error) (float64, error) {
	best := -1.0
	for rep := 0; rep < w.cfg.Repeats; rep++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		sec := time.Since(start).Seconds()
		if best < 0 || sec < best {
			best = sec
		}
	}
	return best, nil
}
