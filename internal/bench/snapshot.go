package bench

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/snapshot"
)

// SnapshotSummary is the machine-readable result of the S5 scale-2
// benchmark tier — cmd/lonabench writes it as BENCH_snapshot.json. It is
// the first committed artifact produced at the "large networks" scale
// the ROADMAP north star names (dataset_scale = 1.25 × the session
// scale, so -scale 2 runs a ≥100k-node Collaboration graph), and it
// measures what the snapshot subsystem actually changes: cold-start
// cost (build-from-generator vs mmap), time-to-first-answer for the
// serving topologies that matter for replica spin-up, and steady-state
// query latency with exact work counters.
type SnapshotSummary struct {
	Dataset string  `json:"dataset"`
	Scale   float64 `json:"scale"` // session -scale (bench tier scale)
	// DatasetScale is the generator scale actually used: 1.25 × Scale,
	// so the scale-2 tier crosses the 100k-node line.
	DatasetScale float64 `json:"dataset_scale"`
	Nodes        int     `json:"nodes"`
	Edges        int     `json:"edges"`
	H            int     `json:"h"`
	K            int     `json:"k"`
	CPUs         int     `json:"cpus"`

	ColdStart SnapshotColdStart   `json:"cold_start"`
	ColdServe []SnapshotServeCell `json:"cold_serve"`
	Query     []SnapshotQueryCell `json:"query"`
}

// SnapshotColdStart prices getting an engine to queryable, both ways.
type SnapshotColdStart struct {
	// BuildSec is today's boot: generate the graph, construct the
	// engine, build the h-hop neighborhood index from scratch.
	BuildSec float64 `json:"build_sec"`
	// WriteSec is the one-time cost of persisting the whole-graph
	// snapshot (amortized across every later boot).
	WriteSec float64 `json:"snapshot_write_sec"`
	Bytes    int64   `json:"snapshot_bytes"`
	// MmapSec is the snapshot boot: open + checksum-verify + map the
	// columns and adopt the prebuilt index — no rebuild.
	MmapSec float64 `json:"mmap_sec"`
	// Speedup is BuildSec / MmapSec — the headline cold-start win.
	Speedup float64 `json:"speedup"`
}

// SnapshotServeCell is one cold-serve measurement: process start to
// first exact top-k answer, for one serving topology. Speedup is
// against the build-single baseline at the same GOMAXPROCS — the boot
// path every topology replaces.
type SnapshotServeCell struct {
	// Mode is build-single (generate + index + query, today's boot),
	// mmap-single (whole-graph snapshot boot), or mmap-sharded (P
	// workers each booting its own partition-closure snapshot behind a
	// coordinator — the replica-spin-up topology).
	Mode           string  `json:"mode"`
	Parts          int     `json:"parts"`
	GOMAXPROCS     int     `json:"gomaxprocs"`
	BootSec        float64 `json:"boot_sec"`
	FirstQuerySec  float64 `json:"first_query_sec"`
	FirstAnswerSec float64 `json:"first_answer_sec"`
	Speedup        float64 `json:"speedup"`
}

// SnapshotQueryCell is one steady-state latency measurement over
// snapshot-backed engines. Speedup is against the single-engine cell at
// the same GOMAXPROCS; on a 1-CPU host the sharded cells price the
// fan-out overhead honestly (expect ≤1.0 — wall-clock fan-out wins need
// real cores; Evaluated shows the work split the cores would divide).
type SnapshotQueryCell struct {
	Mode       string  `json:"mode"` // "single" or "sharded"
	Parts      int     `json:"parts"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Sec        float64 `json:"sec"`
	QPS        float64 `json:"qps"`
	Evaluated  int     `json:"evaluated"`
	Speedup    float64 `json:"speedup"`
}

const (
	// snapshotScaleFactor maps the session scale to the generator scale
	// so the named tier ("scale 2") clears 100k nodes.
	snapshotScaleFactor = 1.25
	snapshotBenchK      = 100
	snapshotBenchParts  = 4
)

// RunSnapshot executes S5 and returns only the Result grid.
func (w *Workspace) RunSnapshot() (*Result, error) {
	res, _, err := w.RunSnapshotDetailed()
	return res, err
}

// RunSnapshotDetailed benchmarks the snapshot subsystem at the scale-2
// tier: Collaboration topology at 1.25× the session scale with the S4
// region-hot relevance skew, 2-hop SUM, k=100, Forward-Dist (the
// bound-driven algorithm both the single engine and the shards run).
// Every snapshot-backed answer — single and sharded, at every
// GOMAXPROCS — is verified byte-identical to the built-from-memory
// engine's answer before its timing is accepted.
func (w *Workspace) RunSnapshotDetailed() (*Result, *SnapshotSummary, error) {
	genScale := w.cfg.Scale * snapshotScaleFactor
	prevGM := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prevGM)

	dir, err := os.MkdirTemp("", "lona-bench-snapshot-")
	if err != nil {
		return nil, nil, err
	}
	defer os.RemoveAll(dir)

	// Today's boot, timed end to end: generator → engine → h-hop index.
	buildStart := time.Now()
	g := gen.Collaboration(gen.DatasetScale(genScale), w.cfg.Seed)
	scores := streamScores(g.NumNodes())
	built, err := core.NewEngine(g, scores, hops)
	if err != nil {
		return nil, nil, err
	}
	built.PrepareNeighborhoodIndex(w.cfg.Workers)
	buildSec := time.Since(buildStart).Seconds()
	w.logf("S5 build-from-generator: %d nodes, %d edges in %.3fs", g.NumNodes(), g.NumEdges(), buildSec)

	q := core.Query{Algorithm: core.AlgoForwardDist, K: snapshotBenchK, Aggregate: core.Sum}
	baseline, err := built.Run(context.Background(), q)
	if err != nil {
		return nil, nil, err
	}
	verify := func(label string, got core.Answer) error {
		if len(got.Results) != len(baseline.Results) {
			return fmt.Errorf("S5 %s: %d results, baseline %d", label, len(got.Results), len(baseline.Results))
		}
		for i := range baseline.Results {
			if got.Results[i] != baseline.Results[i] {
				return fmt.Errorf("S5 %s: result %d = %+v, baseline %+v", label, i, got.Results[i], baseline.Results[i])
			}
		}
		return nil
	}

	// Persist the whole-graph snapshot (timed: the amortized write cost)
	// and the per-shard partition closures (untimed setup for the
	// sharded boots below).
	snapPath := filepath.Join(dir, "bench.snap")
	writeStart := time.Now()
	wr, err := snapshot.NewWriter(g, scores, hops, graph.BuildNeighborhoodIndex(g, hops, w.cfg.Workers))
	if err != nil {
		return nil, nil, err
	}
	if err := wr.WriteFile(snapPath); err != nil {
		return nil, nil, err
	}
	writeSec := time.Since(writeStart).Seconds()
	fi, err := os.Stat(snapPath)
	if err != nil {
		return nil, nil, err
	}
	shards, part, err := cluster.BuildShards(g, scores, hops, snapshotBenchParts)
	if err != nil {
		return nil, nil, err
	}
	edgeCut := part.EdgeCut(g)
	shardPaths := make([]string, len(shards))
	for i, s := range shards {
		shardPaths[i] = fmt.Sprintf("%s.shard%d", snapPath, i)
		if err := cluster.WriteShardSnapshot(s, shardPaths[i], 0); err != nil {
			return nil, nil, err
		}
	}

	// Snapshot boot, timed the same end-to-end way: map + verify + adopt.
	bootSingle := func() (*core.Engine, *snapshot.Reader, error) {
		r, err := snapshot.Open(snapPath)
		if err != nil {
			return nil, nil, err
		}
		e, err := core.NewEngine(r.Graph(), r.Scores(), r.H())
		if err != nil {
			r.Close()
			return nil, nil, err
		}
		if err := e.AdoptNeighborhoodIndex(r.Index()); err != nil {
			r.Close()
			return nil, nil, err
		}
		return e, r, nil
	}
	mmapSec := -1.0
	var mapped *core.Engine
	for rep := 0; rep < w.cfg.Repeats; rep++ {
		start := time.Now()
		e, r, err := bootSingle()
		if err != nil {
			return nil, nil, err
		}
		sec := time.Since(start).Seconds()
		defer r.Close()
		if mmapSec < 0 || sec < mmapSec {
			mmapSec = sec
		}
		mapped = e
	}
	if ans, err := mapped.Run(context.Background(), q); err != nil {
		return nil, nil, err
	} else if err := verify("mmap-single", ans); err != nil {
		return nil, nil, err
	}
	w.logf("S5 mmap boot: %.4fs (%.0fx faster than build)", mmapSec, buildSec/mmapSec)

	sum := &SnapshotSummary{
		Dataset: Collaboration.String(), Scale: w.cfg.Scale, DatasetScale: genScale,
		Nodes: g.NumNodes(), Edges: g.NumEdges(), H: hops, K: snapshotBenchK,
		CPUs: runtime.NumCPU(),
		ColdStart: SnapshotColdStart{
			BuildSec: buildSec, WriteSec: writeSec, Bytes: fi.Size(),
			MmapSec: mmapSec, Speedup: buildSec / mmapSec,
		},
	}
	res := &Result{
		ID:    "S5",
		Title: "Snapshot tier: mmap cold start, cold-serve topologies, steady-state queries (Collaboration, region-hot, SUM, k=100)",
		XName: "gomaxprocs",
		Notes: fmt.Sprintf("%d nodes, %d edges, h=%d, dataset_scale=%.3g; snapshot %.1f MiB; answers verified byte-identical to the built engine",
			g.NumNodes(), g.NumEdges(), hops, genScale, float64(fi.Size())/(1<<20)),
	}
	res.Rows = append(res.Rows,
		Row{X: float64(prevGM), Label: "cold-start/build", Sec: buildSec},
		Row{X: float64(prevGM), Label: "cold-start/mmap", Sec: mmapSec,
			Extra: map[string]float64{"speedup": buildSec / mmapSec, "bytes": float64(fi.Size())}})

	// bootSharded stands up the replica-spin-up topology: P workers each
	// mapping its own partition-closure snapshot behind a coordinator.
	bootSharded := func() (*cluster.Coordinator, []*snapshot.Reader, error) {
		readers := make([]*snapshot.Reader, len(shardPaths))
		ss := make([]*cluster.Shard, len(shardPaths))
		for i, path := range shardPaths {
			r, err := snapshot.Open(path)
			if err != nil {
				return nil, readers, err
			}
			readers[i] = r
			if ss[i], err = cluster.ShardFromSnapshot(r); err != nil {
				return nil, readers, err
			}
		}
		local := cluster.NewLocalFromShards(ss, g.NumNodes(), edgeCut)
		return cluster.NewCoordinator(local, cluster.Options{}), readers, nil
	}
	closeAll := func(readers []*snapshot.Reader) {
		for _, r := range readers {
			if r != nil {
				r.Close()
			}
		}
	}

	for _, gm := range []int{1, 4} {
		runtime.GOMAXPROCS(gm)

		// Cold serve: process start → first exact top-k answer.
		type boot struct {
			mode  string
			parts int
			run   func() (bootSec, querySec float64, err error)
		}
		boots := []boot{
			{"build-single", 1, func() (float64, float64, error) {
				start := time.Now()
				gg := gen.Collaboration(gen.DatasetScale(genScale), w.cfg.Seed)
				e, err := core.NewEngine(gg, streamScores(gg.NumNodes()), hops)
				if err != nil {
					return 0, 0, err
				}
				e.PrepareNeighborhoodIndex(w.cfg.Workers)
				bootSec := time.Since(start).Seconds()
				start = time.Now()
				ans, err := e.Run(context.Background(), q)
				if err != nil {
					return 0, 0, err
				}
				return bootSec, time.Since(start).Seconds(), verify("build-single", ans)
			}},
			{"mmap-single", 1, func() (float64, float64, error) {
				start := time.Now()
				e, r, err := bootSingle()
				if err != nil {
					return 0, 0, err
				}
				defer r.Close()
				bootSec := time.Since(start).Seconds()
				start = time.Now()
				ans, err := e.Run(context.Background(), q)
				if err != nil {
					return 0, 0, err
				}
				return bootSec, time.Since(start).Seconds(), verify("mmap-single", ans)
			}},
			{"mmap-sharded", snapshotBenchParts, func() (float64, float64, error) {
				start := time.Now()
				coord, readers, err := bootSharded()
				defer closeAll(readers)
				if err != nil {
					return 0, 0, err
				}
				bootSec := time.Since(start).Seconds()
				start = time.Now()
				ans, err := coord.Run(context.Background(), q)
				if err != nil {
					return 0, 0, err
				}
				return bootSec, time.Since(start).Seconds(), verify("mmap-sharded", ans)
			}},
		}
		var buildFirstAnswer float64
		for _, b := range boots {
			bestBoot, bestQuery, bestTotal := -1.0, -1.0, -1.0
			for rep := 0; rep < w.cfg.Repeats; rep++ {
				bootSec, querySec, err := b.run()
				if err != nil {
					return nil, nil, err
				}
				if total := bootSec + querySec; bestTotal < 0 || total < bestTotal {
					bestBoot, bestQuery, bestTotal = bootSec, querySec, total
				}
			}
			cell := SnapshotServeCell{
				Mode: b.mode, Parts: b.parts, GOMAXPROCS: gm,
				BootSec: bestBoot, FirstQuerySec: bestQuery, FirstAnswerSec: bestTotal,
			}
			if b.mode == "build-single" {
				buildFirstAnswer = bestTotal
			}
			cell.Speedup = buildFirstAnswer / bestTotal
			sum.ColdServe = append(sum.ColdServe, cell)
			res.Rows = append(res.Rows, Row{
				X: float64(gm), Label: "cold-serve/" + b.mode, Sec: bestTotal,
				Extra: map[string]float64{"speedup": cell.Speedup, "boot_sec": bestBoot, "parts": float64(b.parts)},
			})
			w.logf("S5 cold-serve gomaxprocs=%d %-12s boot %.4fs + query %.4fs = %.4fs (%.2fx vs build-single)",
				gm, b.mode, bestBoot, bestQuery, bestTotal, cell.Speedup)
		}

		// Steady state over the snapshot-backed engines.
		coord, readers, err := bootSharded()
		if err != nil {
			closeAll(readers)
			return nil, nil, err
		}
		var singleSec float64
		type target struct {
			mode  string
			parts int
			run   func() (core.Answer, error)
		}
		for _, tg := range []target{
			{"single", 1, func() (core.Answer, error) { return mapped.Run(context.Background(), q) }},
			{"sharded", snapshotBenchParts, func() (core.Answer, error) { return coord.Run(context.Background(), q) }},
		} {
			var ans core.Answer
			sec, err := w.timeQuery(func() error {
				var err error
				if ans, err = tg.run(); err != nil {
					return err
				}
				return verify(tg.mode, ans)
			})
			if err != nil {
				closeAll(readers)
				return nil, nil, err
			}
			if tg.mode == "single" {
				singleSec = sec
			}
			cell := SnapshotQueryCell{
				Mode: tg.mode, Parts: tg.parts, GOMAXPROCS: gm,
				Sec: sec, QPS: 1 / sec, Evaluated: ans.Stats.Evaluated,
				Speedup: singleSec / sec,
			}
			sum.Query = append(sum.Query, cell)
			res.Rows = append(res.Rows, Row{
				X: float64(gm), Label: "query/" + tg.mode, Sec: sec,
				Extra: map[string]float64{"speedup": cell.Speedup, "qps": cell.QPS, "evaluated": float64(cell.Evaluated)},
			})
			w.logf("S5 query gomaxprocs=%d %-7s %.4fs (%.1f qps, evaluated %d, %.2fx vs single)",
				gm, tg.mode, sec, cell.QPS, cell.Evaluated, cell.Speedup)
		}
		closeAll(readers)
	}
	return res, sum, nil
}
