package bench

import (
	"context"
	"fmt"
	"runtime"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gen"
)

// StreamSummary is the machine-readable result of the S4 streaming
// benchmark — cmd/lonabench writes it as BENCH_stream.json so the
// within-shard early-termination win (evaluated work and message volume,
// streaming vs PR 3's whole-shard cuts) is tracked mechanically.
type StreamSummary struct {
	Dataset string  `json:"dataset"`
	Scale   float64 `json:"scale"`
	Nodes   int     `json:"nodes"`
	Edges   int     `json:"edges"`
	H       int     `json:"h"`
	K       int     `json:"k"`
	Parts   int     `json:"parts"`
	CPUs    int     `json:"cpus"`
	// Scenario documents the score skew: a hot region holding the whole
	// top-k plus a long weak tail in every shard — where cutting inside a
	// shard matters most, because hub candidates keep every shard's merge
	// bound above λ (no whole-shard cut fires) while the λ pushed
	// mid-query prunes each shard's tail.
	Scenario string `json:"scenario"`

	Cells []StreamGridCell `json:"cells"`

	// ColdShards is the λ-priming scenario: disjoint communities with all
	// top-k mass in one shard, full launch parallelism. Unprimed, every
	// shard launches before λ exists; primed, the cold shards are cut
	// before launch with zero stream traffic.
	ColdShards *ColdShardSummary `json:"cold_shards,omitempty"`
}

// StreamGridCell is one (algorithm, mode) measurement.
type StreamGridCell struct {
	Algorithm string `json:"algorithm"`
	// Mode is "whole-shard" (DisableStreaming: λ moves only on shard
	// completion), "streaming" (partial batches, mid-query λ, priming
	// off), or "streaming-primed" (streaming plus sketch-primed launch λ).
	Mode      string  `json:"mode"`
	Sec       float64 `json:"sec"`
	Evaluated int     `json:"evaluated"`
	Pruned    int     `json:"pruned"`
	Messages  int64   `json:"messages"`
	Batches   int64   `json:"partial_batches"`
	ShardsCut int     `json:"shards_cut"`
	// LambdaPrimed is the sketch-primed launch λ (0 when priming was off
	// or not applicable); PrelaunchCuts counts shards cut before launch.
	LambdaPrimed  float64 `json:"lambda_primed,omitempty"`
	PrelaunchCuts int     `json:"prelaunch_cuts,omitempty"`
}

// ColdShardSummary compares a primed and an unprimed run of the same
// query on a topology where every shard but one is cold.
type ColdShardSummary struct {
	Nodes        int     `json:"nodes"`
	Parts        int     `json:"parts"`
	K            int     `json:"k"`
	PrimedLambda float64 `json:"primed_lambda"`
	// Per-run accounting, primed vs cold (priming disabled): shards that
	// actually launched, shards cut before launching, partial frames
	// streamed, and total cross-shard messages.
	LaunchedPrimed      int   `json:"launched_primed"`
	LaunchedCold        int   `json:"launched_cold"`
	PrelaunchCutsPrimed int   `json:"prelaunch_cuts_primed"`
	PrelaunchCutsCold   int   `json:"prelaunch_cuts_cold"`
	BatchesPrimed       int64 `json:"batches_primed"`
	BatchesCold         int64 `json:"batches_cold"`
	MessagesPrimed      int64 `json:"messages_primed"`
	MessagesCold        int64 `json:"messages_cold"`
}

const streamBenchParts = 4

// streamBenchEvery pins the coordinator's partial-emission cadence for
// every S4 cell: the adaptive controller carries state across queries,
// which is right for serving but noise for a benchmark grid.
const streamBenchEvery = 64

// streamScores builds the S4 skew: a hot region (first eighth of the id
// space, relevance 0.9) holding the entire top-k, and a weak tail
// (relevance 0.05) everywhere else. On a hub-heavy graph every shard
// keeps a high merge bound through its hubs, so no whole shard is ever
// cut — the work reduction must come from inside the shards.
func streamScores(n int) []float64 {
	scores := make([]float64, n)
	for v := range scores {
		scores[v] = 0.05
	}
	for v := 0; v < n/8; v++ {
		scores[v] = 0.9
	}
	return scores
}

// RunStream executes S4 and returns only the Result grid.
func (w *Workspace) RunStream() (*Result, error) {
	res, _, err := w.RunStreamDetailed()
	return res, err
}

// RunStreamDetailed benchmarks streaming within-shard TA cuts against
// whole-shard cuts on the skewed scenario (Collaboration topology,
// region-hot relevance, SUM): the bound-driven algorithms under both
// merge modes, serial shard execution (Parallel=1) so the comparison is
// deterministic and independent of host parallelism. Every answer is
// verified byte-identical to the single-engine baseline before its
// numbers are accepted.
func (w *Workspace) RunStreamDetailed() (*Result, *StreamSummary, error) {
	g, err := w.Graph(Collaboration)
	if err != nil {
		return nil, nil, err
	}
	scores := streamScores(g.NumNodes())
	engine, err := core.NewEngine(g, scores, hops)
	if err != nil {
		return nil, nil, err
	}
	k := 100
	if max := g.NumNodes() / 10; k > max {
		k = max // tiny smoke scales still need a meaningful top-k
	}

	local, err := cluster.NewLocal(g, scores, hops, streamBenchParts)
	if err != nil {
		return nil, nil, err
	}
	local.PrepareIndexes(w.cfg.Workers)

	sum := &StreamSummary{
		Dataset: Collaboration.String(), Scale: w.cfg.Scale,
		Nodes: g.NumNodes(), Edges: g.NumEdges(), H: hops, K: k,
		Parts: streamBenchParts, CPUs: runtime.GOMAXPROCS(0),
		Scenario: "region-hot: top-k in one hot region, weak tail everywhere; shard bounds stay above λ via hubs",
	}
	res := &Result{
		ID:    "S4",
		Title: "Streaming within-shard TA cuts vs whole-shard cuts (Collaboration, region-hot, SUM)",
		XName: "mode",
		Notes: fmt.Sprintf("%d nodes, %d edges, h=%d, k=%d, %d shards, serial fan-out; answers verified byte-identical to the single engine",
			g.NumNodes(), g.NumEdges(), hops, k, streamBenchParts),
	}

	for _, algo := range []core.Algorithm{core.AlgoForwardDist, core.AlgoBackward} {
		q := core.Query{Algorithm: algo, K: k, Aggregate: core.Sum}
		baseline, err := engine.Run(context.Background(), q)
		if err != nil {
			return nil, nil, err
		}
		for mi, mode := range []string{"whole-shard", "streaming", "streaming-primed"} {
			coord := cluster.NewCoordinator(local, cluster.Options{
				Parallel:         1,
				DisableStreaming: mode == "whole-shard",
				DisablePriming:   mode != "streaming-primed",
				PartialEvery:     streamBenchEvery,
			})
			var ans core.Answer
			var bd cluster.Breakdown
			sec, err := w.timeQuery(func() error {
				var err error
				ans, bd, err = coord.RunDetailed(context.Background(), q)
				return err
			})
			if err != nil {
				return nil, nil, err
			}
			if len(ans.Results) != len(baseline.Results) {
				return nil, nil, fmt.Errorf("S4 %v/%s: %d results, baseline %d", algo, mode, len(ans.Results), len(baseline.Results))
			}
			for i := range baseline.Results {
				if ans.Results[i] != baseline.Results[i] {
					return nil, nil, fmt.Errorf("S4 %v/%s: result %d = %+v, baseline %+v", algo, mode, i, ans.Results[i], baseline.Results[i])
				}
			}
			cell := StreamGridCell{
				Algorithm: algo.String(), Mode: mode, Sec: sec,
				Evaluated: ans.Stats.Evaluated, Pruned: ans.Stats.Pruned,
				Messages: bd.Messages, Batches: bd.PartialBatches, ShardsCut: bd.ShardsCut,
				LambdaPrimed: bd.LambdaPrimed, PrelaunchCuts: prelaunchCuts(bd),
			}
			sum.Cells = append(sum.Cells, cell)
			res.Rows = append(res.Rows, Row{
				X: float64(mi), Label: algo.String() + "/" + mode, Sec: sec,
				Extra: map[string]float64{
					"evaluated":       float64(cell.Evaluated),
					"pruned":          float64(cell.Pruned),
					"messages":        float64(cell.Messages),
					"partial_batches": float64(cell.Batches),
					"shards_cut":      float64(cell.ShardsCut),
				},
			})
			w.logf("S4 %-13s %-16s %.4fs evaluated=%d pruned=%d messages=%d batches=%d cut=%d primed=%.4g",
				algo, mode, sec, cell.Evaluated, cell.Pruned, cell.Messages, cell.Batches, cell.ShardsCut, cell.LambdaPrimed)
		}
	}

	cold, err := w.runColdShards()
	if err != nil {
		return nil, nil, err
	}
	sum.ColdShards = cold
	return res, sum, nil
}

// prelaunchCuts counts shards the coordinator cut before launching —
// shards that cost zero stream traffic.
func prelaunchCuts(bd cluster.Breakdown) int {
	n := 0
	for _, r := range bd.PerShard {
		if r.Cut && !r.Launched {
			n++
		}
	}
	return n
}

// runColdShards measures λ-priming on the topology it exists for:
// disjoint communities (planted partition, pout=0) with every non-zero
// score in community 0, shards launched at full parallelism. Without
// priming λ is 0 at launch time, so every shard launches and streams;
// with priming the coordinator's sketch merge proves the cold shards'
// bounds can never reach the top-k and cuts them with zero messages.
// Both answers are verified byte-identical to the single engine.
func (w *Workspace) runColdShards() (*ColdShardSummary, error) {
	n := int(2000 * w.cfg.Scale)
	if n < 40*streamBenchParts {
		n = 40 * streamBenchParts
	}
	n -= n % streamBenchParts
	g := gen.PlantedPartition(n, streamBenchParts, 0.05, 0, 9)
	scores := make([]float64, n)
	for v := 0; v < n; v += streamBenchParts { // community 0 = ids ≡ 0 (mod P)
		scores[v] = 0.25 + 0.75*float64(v%13)/13
	}
	engine, err := core.NewEngine(g, scores, hops)
	if err != nil {
		return nil, err
	}
	local, err := cluster.NewLocal(g, scores, hops, streamBenchParts)
	if err != nil {
		return nil, err
	}
	local.PrepareIndexes(w.cfg.Workers)

	q := core.Query{Algorithm: core.AlgoBase, K: 10, Aggregate: core.Sum}
	want, err := engine.Run(context.Background(), q)
	if err != nil {
		return nil, err
	}
	run := func(disablePriming bool) (cluster.Breakdown, error) {
		coord := cluster.NewCoordinator(local, cluster.Options{
			Parallel:       streamBenchParts,
			DisablePriming: disablePriming,
			PartialEvery:   streamBenchEvery,
		})
		ans, bd, err := coord.RunDetailed(context.Background(), q)
		if err != nil {
			return bd, err
		}
		if len(ans.Results) != len(want.Results) {
			return bd, fmt.Errorf("S4 cold-shards: %d results, baseline %d", len(ans.Results), len(want.Results))
		}
		for i := range want.Results {
			if ans.Results[i] != want.Results[i] {
				return bd, fmt.Errorf("S4 cold-shards: result %d = %+v, baseline %+v", i, ans.Results[i], want.Results[i])
			}
		}
		return bd, nil
	}
	primed, err := run(false)
	if err != nil {
		return nil, err
	}
	coldBd, err := run(true)
	if err != nil {
		return nil, err
	}
	launched := func(bd cluster.Breakdown) int {
		n := 0
		for _, r := range bd.PerShard {
			if r.Launched {
				n++
			}
		}
		return n
	}
	sum := &ColdShardSummary{
		Nodes: n, Parts: streamBenchParts, K: q.K,
		PrimedLambda:        primed.LambdaPrimed,
		LaunchedPrimed:      launched(primed),
		LaunchedCold:        launched(coldBd),
		PrelaunchCutsPrimed: prelaunchCuts(primed),
		PrelaunchCutsCold:   prelaunchCuts(coldBd),
		BatchesPrimed:       primed.PartialBatches,
		BatchesCold:         coldBd.PartialBatches,
		MessagesPrimed:      primed.Messages,
		MessagesCold:        coldBd.Messages,
	}
	w.logf("S4 cold-shards primed: λ=%.4g launched=%d/%d prelaunch-cuts=%d batches=%d messages=%d",
		sum.PrimedLambda, sum.LaunchedPrimed, sum.Parts, sum.PrelaunchCutsPrimed, sum.BatchesPrimed, sum.MessagesPrimed)
	w.logf("S4 cold-shards cold:   launched=%d/%d prelaunch-cuts=%d batches=%d messages=%d",
		sum.LaunchedCold, sum.Parts, sum.PrelaunchCutsCold, sum.BatchesCold, sum.MessagesCold)
	return sum, nil
}
