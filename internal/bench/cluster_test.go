package bench

import "testing"

// TestRunClusterSmoke runs S2 on a small-but-real dataset and checks the
// summary invariants: every grid cell carries a verified timing (the
// harness itself cross-checks answers against the baseline before
// accepting them), messages appear once the topology has more than one
// shard, and the HTTP point made it in.
func TestRunClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster benchmark takes seconds")
	}
	w := NewWorkspace(Config{Scale: 0.1, Seed: 42, Workers: 2})
	res, sum, err := w.RunClusterDetailed()
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "S2" || sum.BaselineSec <= 0 {
		t.Fatalf("unexpected result shape: id=%s baseline=%v", res.ID, sum.BaselineSec)
	}
	if len(sum.Grid) != 5 { // local ×4 parts + one http point
		t.Fatalf("grid has %d cells, want 5", len(sum.Grid))
	}
	sawHTTP := false
	for _, cell := range sum.Grid {
		if cell.Sec <= 0 || cell.Speedup <= 0 {
			t.Fatalf("cell %+v has non-positive timing", cell)
		}
		if cell.Parts > 1 && cell.Messages == 0 {
			t.Fatalf("multi-shard cell %+v reports zero messages", cell)
		}
		if cell.Transport == "http" {
			sawHTTP = true
		}
	}
	if !sawHTTP {
		t.Fatal("no HTTP transport point in the grid")
	}
	if res.Markdown() == "" || res.CSV() == "" {
		t.Fatal("renderers rejected the grid")
	}
}
