package bench

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/server"
)

// ServingSummary is the machine-readable result of the S1 serving
// benchmark — cmd/lonabench writes it as BENCH_serving.json so the
// serving-path performance trajectory is tracked mechanically across PRs.
type ServingSummary struct {
	Dataset string  `json:"dataset"`
	Scale   float64 `json:"scale"`
	Nodes   int     `json:"nodes"`
	Edges   int     `json:"edges"`
	H       int     `json:"h"`
	K       int     `json:"k"`

	ColdP50US       float64 `json:"cold_p50_us"`
	ColdP99US       float64 `json:"cold_p99_us"`
	CachedP50US     float64 `json:"cached_p50_us"`
	CachedP99US     float64 `json:"cached_p99_us"`
	PostUpdateP50US float64 `json:"post_update_p50_us"`
	PostUpdateP99US float64 `json:"post_update_p99_us"`

	// SpeedupP50 is cold p50 / cached p50 — the headline cache win.
	SpeedupP50 float64 `json:"speedup_p50"`
	// CachedQPS is the sustained throughput of concurrent cache-hit
	// queries through the full HTTP handler.
	CachedQPS float64 `json:"cached_qps"`
	// CacheHitRate is the server's lifetime hit rate over the whole run.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// UpdateMeanUS is the mean wall-clock cost of a one-node score batch
	// (view repair + engine rebuild + generation bump).
	UpdateMeanUS float64 `json:"update_mean_us"`
}

// servingSamples per phase. Cold and post-update queries run a real engine
// query each, so they stay modest; cached hits are near-free.
const (
	servingColdSamples   = 12
	servingCachedSamples = 2000
	servingUpdateSamples = 12
	servingQPSWorkers    = 4
	servingQPSPerWorker  = 500
)

// RunServing executes S1 and returns only the Result grid.
func (w *Workspace) RunServing() (*Result, error) {
	res, _, err := w.RunServingDetailed()
	return res, err
}

// RunServingDetailed benchmarks the serving subsystem on the default
// synthetic dataset (Collaboration, mixture relevance, r=0.01, 2-hop):
// per-request latency through the full HTTP handler for cold queries
// (distinct requests, every one a cache miss), cached repeats (unchanged
// generation), and post-update queries (first query after a score batch,
// i.e. a fresh generation), plus sustained cache-hit throughput under
// concurrency.
func (w *Workspace) RunServingDetailed() (*Result, *ServingSummary, error) {
	g, err := w.Graph(Collaboration)
	if err != nil {
		return nil, nil, err
	}
	scores, err := w.Scores(g, MixtureScores, 0.01)
	if err != nil {
		return nil, nil, err
	}
	start := time.Now()
	srv, err := server.New(g, scores, hops, server.Options{Workers: w.cfg.Workers})
	if err != nil {
		return nil, nil, err
	}
	w.logf("S1 server ready in %.1fs (%d nodes, %d edges)",
		time.Since(start).Seconds(), g.NumNodes(), g.NumEdges())
	handler := srv.Handler()

	do := func(body string) (time.Duration, error) {
		req := httptest.NewRequest(http.MethodPost, "/v1/topk", strings.NewReader(body))
		rec := httptest.NewRecorder()
		t0 := time.Now()
		handler.ServeHTTP(rec, req)
		d := time.Since(t0)
		if rec.Code != http.StatusOK {
			return 0, fmt.Errorf("S1 query failed (%d): %s", rec.Code, rec.Body.String())
		}
		return d, nil
	}
	topkBody := func(k int) string {
		return fmt.Sprintf(`{"k":%d,"aggregate":"sum","algorithm":"auto"}`, k)
	}
	const servedK = 100 // the middle of the paper's 1..300 sweep

	// Cold: distinct k per request, so every query misses the cache and
	// runs the planner-chosen engine algorithm.
	var cold []time.Duration
	for i := 0; i < servingColdSamples; i++ {
		d, err := do(topkBody(servedK + i))
		if err != nil {
			return nil, nil, err
		}
		cold = append(cold, d)
	}
	w.logf("S1 cold: p50 %.0fµs p99 %.0fµs", quantileUS(cold, 0.5), quantileUS(cold, 0.99))

	// Cached: one request repeated at an unchanged generation.
	var cached []time.Duration
	for i := 0; i < servingCachedSamples; i++ {
		d, err := do(topkBody(servedK))
		if err != nil {
			return nil, nil, err
		}
		cached = append(cached, d)
	}
	w.logf("S1 cached: p50 %.0fµs p99 %.0fµs", quantileUS(cached, 0.5), quantileUS(cached, 0.99))

	// Post-update: each score batch bumps the generation, so the next
	// query pays a full recomputation — the serving cost of freshness.
	var postUpdate []time.Duration
	var updateUS float64
	for i := 0; i < servingUpdateSamples; i++ {
		node := (i * 7919) % g.NumNodes()
		score := float64(i%10) / 10
		t0 := time.Now()
		updReq := httptest.NewRequest(http.MethodPost, "/v1/scores",
			strings.NewReader(fmt.Sprintf(`{"updates":[{"node":%d,"score":%g}]}`, node, score)))
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, updReq)
		if rec.Code != http.StatusOK {
			return nil, nil, fmt.Errorf("S1 update failed (%d): %s", rec.Code, rec.Body.String())
		}
		updateUS += float64(time.Since(t0).Microseconds())
		d, err := do(topkBody(servedK))
		if err != nil {
			return nil, nil, err
		}
		postUpdate = append(postUpdate, d)
	}
	updateUS /= servingUpdateSamples
	w.logf("S1 post-update: p50 %.0fµs p99 %.0fµs (update mean %.0fµs)",
		quantileUS(postUpdate, 0.5), quantileUS(postUpdate, 0.99), updateUS)

	// Throughput: concurrent identical cache-hit queries.
	if _, err := do(topkBody(servedK)); err != nil { // ensure the entry is warm
		return nil, nil, err
	}
	var wg sync.WaitGroup
	qpsErrs := make(chan error, servingQPSWorkers)
	t0 := time.Now()
	for wk := 0; wk < servingQPSWorkers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < servingQPSPerWorker; i++ {
				if _, err := do(topkBody(servedK)); err != nil {
					qpsErrs <- err
					return
				}
			}
			qpsErrs <- nil
		}()
	}
	wg.Wait()
	for wk := 0; wk < servingQPSWorkers; wk++ {
		if err := <-qpsErrs; err != nil {
			return nil, nil, err
		}
	}
	qps := float64(servingQPSWorkers*servingQPSPerWorker) / time.Since(t0).Seconds()
	stats := srv.Stats()
	w.logf("S1 throughput: %.0f QPS (hit rate %.3f)", qps, stats.Cache.HitRate)

	sum := &ServingSummary{
		Dataset: Collaboration.String(), Scale: w.cfg.Scale,
		Nodes: g.NumNodes(), Edges: g.NumEdges(), H: hops, K: servedK,
		ColdP50US: quantileUS(cold, 0.5), ColdP99US: quantileUS(cold, 0.99),
		CachedP50US: quantileUS(cached, 0.5), CachedP99US: quantileUS(cached, 0.99),
		PostUpdateP50US: quantileUS(postUpdate, 0.5), PostUpdateP99US: quantileUS(postUpdate, 0.99),
		CachedQPS: qps, CacheHitRate: stats.Cache.HitRate, UpdateMeanUS: updateUS,
	}
	if sum.CachedP50US > 0 {
		sum.SpeedupP50 = sum.ColdP50US / sum.CachedP50US
	}

	res := &Result{
		ID:    "S1",
		Title: "Serving: cold vs cached vs post-update latency (lonad, SUM, auto)",
		XName: "k",
		Notes: fmt.Sprintf("%s @ scale %v (%d nodes, %d edges), h=%d; latency through the HTTP handler; QPS over %d concurrent workers",
			Collaboration, w.cfg.Scale, g.NumNodes(), g.NumEdges(), hops, servingQPSWorkers),
	}
	addPhase := func(label string, samples []time.Duration, extra map[string]float64) {
		row := Row{
			X: float64(servedK), Label: label,
			Sec: quantileUS(samples, 0.5) / 1e6,
			Extra: map[string]float64{
				"p50_us":  quantileUS(samples, 0.5),
				"p99_us":  quantileUS(samples, 0.99),
				"samples": float64(len(samples)),
			},
		}
		for k, v := range extra {
			row.Extra[k] = v
		}
		res.Rows = append(res.Rows, row)
	}
	addPhase("cold", cold, nil)
	addPhase("cached", cached, map[string]float64{"qps": qps, "hit_rate": stats.Cache.HitRate})
	addPhase("post-update", postUpdate, map[string]float64{"update_mean_us": updateUS})
	return res, sum, nil
}

// quantileUS returns the exact q-quantile of the samples in microseconds.
func quantileUS(samples []time.Duration, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx].Nanoseconds()) / 1e3
}
