package bench

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

// MutationSummary is the machine-readable result of the S3 structural-
// mutation benchmark — cmd/lonabench writes it as BENCH_mutation.json so
// the incremental-repair path's advantage over full rebuilds is tracked
// mechanically across PRs.
type MutationSummary struct {
	Dataset string  `json:"dataset"`
	Scale   float64 `json:"scale"`
	Nodes   int     `json:"nodes"`
	Edges   int     `json:"edges"`
	H       int     `json:"h"`
	// CPUs bounds the parallelism of the full index rebuild the
	// incremental path is racing.
	CPUs  int            `json:"cpus"`
	Cells []MutationCell `json:"cells"`
}

// MutationCell is one edit-batch-size measurement: the incremental path
// (View.ApplyEdits — successor graph derivation, neighborhood-index
// repair, and aggregate repair of only the affected nodes) against the
// full rebuild (NewView over the mutated graph: full index build plus a
// whole-graph distribution pass).
type MutationCell struct {
	BatchEdits     int     `json:"batch_edits"`
	IncrementalSec float64 `json:"incremental_sec"`
	RebuildSec     float64 `json:"rebuild_sec"`
	// Speedup is rebuild_sec / incremental_sec — the headline repair win.
	Speedup float64 `json:"speedup"`
	// Repaired is how many nodes the incremental path recomputed; the
	// rebuild recomputes all of them.
	Repaired int `json:"repaired"`
}

// mutationBatchSizes sweeps from single-edge edits (the serving
// steady-state) to bulk rewirings where repair locality starts washing
// out.
var mutationBatchSizes = []int{1, 4, 16, 64, 256}

// randomMutationBatch draws a deterministic edit batch against g:
// mostly edge inserts between random endpoints, a removal share aimed at
// real edges, and the occasional node addition — the mix a dynamic
// intrusion or social workload produces.
func randomMutationBatch(rng *rand.Rand, g *graph.Graph, size int) []graph.Edit {
	n := g.NumNodes()
	edits := make([]graph.Edit, 0, size)
	for len(edits) < size {
		switch rng.Intn(10) {
		case 0:
			edits = append(edits, graph.Edit{Op: graph.EditAddNode})
			n++
		case 1, 2, 3, 4:
			u := rng.Intn(g.NumNodes())
			if g.Degree(u) > 0 {
				nbrs := g.Neighbors(u)
				edits = append(edits, graph.Edit{Op: graph.EditRemoveEdge, U: u, V: int(nbrs[rng.Intn(len(nbrs))])})
			}
		default:
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				edits = append(edits, graph.Edit{Op: graph.EditAddEdge, U: u, V: v})
			}
		}
	}
	return edits
}

// RunMutation executes S3 and returns only the Result grid.
func (w *Workspace) RunMutation() (*Result, error) {
	res, _, err := w.RunMutationDetailed()
	return res, err
}

// RunMutationDetailed benchmarks structural-mutation repair on the
// default synthetic dataset (Collaboration, mixture relevance, r=0.01,
// 2-hop): for each edit-batch size, one batch is applied through the
// incremental path and, independently, as a from-scratch rebuild of the
// same mutated state. The two resulting views are verified byte-identical
// (sums and N(v)) before either timing is accepted — a benchmark of a
// divergent repair would be worthless.
func (w *Workspace) RunMutationDetailed() (*Result, *MutationSummary, error) {
	g, err := w.Graph(Collaboration)
	if err != nil {
		return nil, nil, err
	}
	scores, err := w.Scores(g, MixtureScores, 0.01)
	if err != nil {
		return nil, nil, err
	}
	view, err := core.NewView(g, scores, hops)
	if err != nil {
		return nil, nil, err
	}

	sum := &MutationSummary{
		Dataset: Collaboration.String(), Scale: w.cfg.Scale,
		Nodes: g.NumNodes(), Edges: g.NumEdges(), H: hops,
		CPUs: runtime.GOMAXPROCS(0),
	}
	res := &Result{
		ID:    "S3",
		Title: "Structural mutation: incremental repair vs full rebuild (Collaboration, 2-hop view)",
		XName: "batch_edits",
		Notes: fmt.Sprintf("%d nodes, %d edges, h=%d; repair = ApplyEdits (graph derive + index repair + aggregate repair of affected nodes), rebuild = NewView over the mutated graph; states verified byte-identical before timing. Small batches win big (the serving steady-state); bulk batches cross over as the affected closure approaches the whole graph — see cpus: the repair and the rebuild's index pass both parallelize, the rebuild's distribution pass does not",
			g.NumNodes(), g.NumEdges(), hops),
	}

	rng := rand.New(rand.NewSource(w.cfg.Seed + 77))
	ctx := context.Background()
	for _, batch := range mutationBatchSizes {
		edits := randomMutationBatch(rng, view.Graph(), batch)

		// Each batch is timed once (not min-of-Repeats): re-applying an
		// already-applied batch would be all no-ops and time nothing.
		start := time.Now()
		editRes, err := view.ApplyEdits(ctx, edits)
		incSec := time.Since(start).Seconds()
		if err != nil {
			return nil, nil, err
		}

		mutated := view.Graph()
		mutatedScores := view.ScoresCopy()
		start = time.Now()
		rebuilt, err := core.NewView(mutated, mutatedScores, hops)
		rebSec := time.Since(start).Seconds()
		if err != nil {
			return nil, nil, err
		}

		// Equivalence gate: every sum bit and every N(v) must agree.
		for u := 0; u < mutated.NumNodes(); u++ {
			if math.Float64bits(view.Sum(u)) != math.Float64bits(rebuilt.Sum(u)) {
				return nil, nil, fmt.Errorf("S3 batch=%d: sum(%d) diverged between repair and rebuild", batch, u)
			}
			if view.NeighborhoodIndex().N(u) != rebuilt.NeighborhoodIndex().N(u) {
				return nil, nil, fmt.Errorf("S3 batch=%d: N(%d) diverged between repair and rebuild", batch, u)
			}
		}

		cell := MutationCell{
			BatchEdits: batch, IncrementalSec: incSec, RebuildSec: rebSec,
			Repaired: editRes.Repaired,
		}
		if incSec > 0 {
			cell.Speedup = rebSec / incSec
		}
		sum.Cells = append(sum.Cells, cell)
		res.Rows = append(res.Rows,
			Row{X: float64(batch), Label: "incremental", Sec: incSec,
				Extra: map[string]float64{"speedup": cell.Speedup, "repaired": float64(cell.Repaired)}},
			Row{X: float64(batch), Label: "rebuild", Sec: rebSec})
		w.logf("S3 batch=%-4d incremental %.5fs vs rebuild %.5fs (%.1fx, repaired %d/%d nodes)",
			batch, incSec, rebSec, cell.Speedup, cell.Repaired, mutated.NumNodes())
	}
	return res, sum, nil
}
