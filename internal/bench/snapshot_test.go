package bench

import (
	"runtime"
	"testing"
)

// TestRunSnapshotSmoke runs S5 on a small-but-real dataset and checks
// the tier's acceptance shape: the mmap boot beats the
// build-from-generator boot, every cold-serve topology answers faster
// than the build-single baseline it replaces (speedup > 1 for the
// snapshot boots), and the grid covers GOMAXPROCS ∈ {1, 4}. The harness
// itself verified every snapshot-backed answer byte-identical to the
// built engine before reporting any timing.
func TestRunSnapshotSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("snapshot benchmark takes seconds")
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	w := NewWorkspace(Config{Scale: 0.2, Seed: 42, Workers: 2, Repeats: 2})
	res, sum, err := w.RunSnapshotDetailed()
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "S5" {
		t.Fatalf("unexpected result id %q", res.ID)
	}
	if sum.Nodes < 1000 {
		t.Fatalf("dataset too small to exercise anything: %d nodes", sum.Nodes)
	}
	if sum.DatasetScale <= sum.Scale {
		t.Fatalf("dataset_scale %v must exceed session scale %v", sum.DatasetScale, sum.Scale)
	}

	cs := sum.ColdStart
	if cs.BuildSec <= 0 || cs.MmapSec <= 0 || cs.WriteSec <= 0 || cs.Bytes <= 0 {
		t.Fatalf("cold start has non-positive fields: %+v", cs)
	}
	if cs.Speedup <= 1 {
		t.Fatalf("mmap boot (%.4fs) did not beat build-from-generator (%.4fs)", cs.MmapSec, cs.BuildSec)
	}

	if len(sum.ColdServe) != 6 { // 3 modes × 2 GOMAXPROCS settings
		t.Fatalf("expected 6 cold-serve cells, got %d", len(sum.ColdServe))
	}
	gms := map[int]bool{}
	for _, cell := range sum.ColdServe {
		gms[cell.GOMAXPROCS] = true
		if cell.FirstAnswerSec <= 0 {
			t.Fatalf("cold-serve cell %+v has non-positive timing", cell)
		}
		switch cell.Mode {
		case "build-single":
			if cell.Speedup != 1 {
				t.Fatalf("baseline cell speedup %v, want 1", cell.Speedup)
			}
		case "mmap-single", "mmap-sharded":
			if cell.Speedup <= 1 {
				t.Fatalf("%s at GOMAXPROCS=%d: first answer %.4fs, speedup %.2fx — snapshot boot must beat the build boot",
					cell.Mode, cell.GOMAXPROCS, cell.FirstAnswerSec, cell.Speedup)
			}
		default:
			t.Fatalf("unknown cold-serve mode %q", cell.Mode)
		}
	}
	if !gms[1] || !gms[4] {
		t.Fatalf("cold-serve grid missing a GOMAXPROCS setting: %+v", gms)
	}

	if len(sum.Query) != 4 { // 2 modes × 2 GOMAXPROCS settings
		t.Fatalf("expected 4 query cells, got %d", len(sum.Query))
	}
	for _, cell := range sum.Query {
		if cell.Sec <= 0 || cell.QPS <= 0 || cell.Evaluated <= 0 {
			t.Fatalf("query cell %+v has non-positive fields", cell)
		}
	}

	if runtime.GOMAXPROCS(0) != prev {
		t.Fatalf("benchmark leaked GOMAXPROCS=%d (want %d restored)", runtime.GOMAXPROCS(0), prev)
	}
	if res.Markdown() == "" || res.CSV() == "" {
		t.Fatal("renderers rejected the grid")
	}
}

// BenchmarkS5 runs the full scale-2 tier once per iteration; CI smokes
// it with -benchtime=1x at GOMAXPROCS=4 so the ≥100k-node path stays
// exercised without committing to its multi-minute full matrix.
func BenchmarkS5(b *testing.B) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for i := 0; i < b.N; i++ {
		w := NewWorkspace(Config{Scale: 2, Seed: 20100301, Workers: 0})
		if _, _, err := w.RunSnapshotDetailed(); err != nil {
			b.Fatal(err)
		}
	}
}
