package bench

import "testing"

// TestRunMutationSmoke runs S3 on a small-but-real dataset and checks
// the acceptance bar: incremental repair beats the full rebuild on small
// edit batches (the serving steady-state). The gap at batch=1 is
// normally orders of magnitude — repair touches O(|S_h(endpoints)|)
// nodes while the rebuild pays a whole-graph index build — so requiring
// a plain win leaves ample headroom for noisy CI machines.
func TestRunMutationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("mutation benchmark takes seconds")
	}
	w := NewWorkspace(Config{Scale: 0.1, Seed: 42, Workers: 2})
	res, sum, err := w.RunMutationDetailed()
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "S3" || len(sum.Cells) != len(mutationBatchSizes) {
		t.Fatalf("unexpected result shape: id=%s cells=%d", res.ID, len(sum.Cells))
	}
	for _, cell := range sum.Cells {
		if cell.IncrementalSec <= 0 || cell.RebuildSec <= 0 {
			t.Fatalf("non-positive timing: %+v", cell)
		}
		// Small batches are the serving steady-state and must win even on
		// a single-core machine; larger batches legitimately cross over
		// (the affected closure approaches the whole graph while the
		// rebuild's index pass parallelizes), so they are reported, not
		// asserted.
		if cell.BatchEdits <= 4 && cell.IncrementalSec >= cell.RebuildSec {
			t.Fatalf("batch=%d: incremental repair (%.5fs) did not beat full rebuild (%.5fs)",
				cell.BatchEdits, cell.IncrementalSec, cell.RebuildSec)
		}
	}
	// The markdown/CSV renderers must accept the grid.
	if res.Markdown() == "" || res.CSV() == "" {
		t.Fatal("empty rendering")
	}
}
