package ds

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEpochMarkAndReset(t *testing.T) {
	e := NewEpoch(10)
	if e.Len() != 10 {
		t.Fatalf("Len = %d, want 10", e.Len())
	}
	if e.Marked(3) {
		t.Fatal("fresh epoch reports node 3 marked")
	}
	if already := e.Mark(3); already {
		t.Fatal("first Mark reported already-marked")
	}
	if !e.Marked(3) {
		t.Fatal("Mark(3) did not stick")
	}
	if already := e.Mark(3); !already {
		t.Fatal("second Mark did not report already-marked")
	}
	e.Reset()
	if e.Marked(3) {
		t.Fatal("Reset did not clear mark")
	}
}

func TestEpochUnmark(t *testing.T) {
	e := NewEpoch(4)
	e.Mark(2)
	e.Unmark(2)
	if e.Marked(2) {
		t.Fatal("Unmark did not clear")
	}
	e.Unmark(1) // unmarking an unmarked id must be a no-op
	if e.Marked(1) {
		t.Fatal("Unmark marked an id")
	}
}

func TestEpochGrow(t *testing.T) {
	e := NewEpoch(2)
	e.Mark(1)
	e.Grow(8)
	if e.Len() != 8 {
		t.Fatalf("Len after Grow = %d, want 8", e.Len())
	}
	if !e.Marked(1) {
		t.Fatal("Grow lost existing mark")
	}
	if e.Marked(7) {
		t.Fatal("grown range reports marked")
	}
	e.Grow(4) // shrinking request is a no-op
	if e.Len() != 8 {
		t.Fatalf("Len after no-op Grow = %d, want 8", e.Len())
	}
}

func TestEpochGenerationWrap(t *testing.T) {
	e := NewEpoch(3)
	e.Mark(0)
	e.gen = ^uint32(0) // force the wrap path on next Reset
	e.Reset()
	if e.gen != 1 {
		t.Fatalf("gen after wrap = %d, want 1", e.gen)
	}
	for id := 0; id < 3; id++ {
		if e.Marked(id) {
			t.Fatalf("node %d marked after wrap reset", id)
		}
	}
}

func TestEpochManyResetsStayCorrect(t *testing.T) {
	e := NewEpoch(5)
	for round := 0; round < 1000; round++ {
		id := round % 5
		if e.Marked(id) {
			t.Fatalf("round %d: stale mark on %d", round, id)
		}
		e.Mark(id)
		e.Reset()
	}
}

func TestIntQueueFIFO(t *testing.T) {
	var q IntQueue
	if !q.Empty() {
		t.Fatal("zero-value queue not empty")
	}
	for i := 0; i < 100; i++ {
		q.Push(i)
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d, want 100", q.Len())
	}
	for i := 0; i < 100; i++ {
		if got := q.Pop(); got != i {
			t.Fatalf("Pop = %d, want %d", got, i)
		}
	}
	if !q.Empty() {
		t.Fatal("queue not empty after draining")
	}
}

func TestIntQueueInterleaved(t *testing.T) {
	var q IntQueue
	next := 0
	pushed := 0
	rng := rand.New(rand.NewSource(7))
	for step := 0; step < 20000; step++ {
		if q.Empty() || rng.Intn(2) == 0 {
			q.Push(pushed)
			pushed++
		} else {
			if got := q.Pop(); got != next {
				t.Fatalf("step %d: Pop = %d, want %d", step, got, next)
			}
			next++
		}
	}
	for !q.Empty() {
		if got := q.Pop(); got != next {
			t.Fatalf("drain: Pop = %d, want %d", got, next)
		}
		next++
	}
	if next != pushed {
		t.Fatalf("drained %d, pushed %d", next, pushed)
	}
}

func TestIntQueuePopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pop on empty queue did not panic")
		}
	}()
	var q IntQueue
	q.Pop()
}

func TestIntQueueReset(t *testing.T) {
	var q IntQueue
	q.Push(1)
	q.Push(2)
	q.Reset()
	if !q.Empty() || q.Len() != 0 {
		t.Fatal("Reset did not empty queue")
	}
	q.Push(9)
	if got := q.Pop(); got != 9 {
		t.Fatalf("Pop after Reset = %d, want 9", got)
	}
}

func TestIntStackLIFO(t *testing.T) {
	var s IntStack
	for i := 0; i < 10; i++ {
		s.Push(i)
	}
	for i := 9; i >= 0; i-- {
		if got := s.Pop(); got != i {
			t.Fatalf("Pop = %d, want %d", got, i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Pop on empty stack did not panic")
		}
	}()
	s.Pop()
}

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130) // crosses word boundaries
	if b.Len() != 130 {
		t.Fatalf("Len = %d, want 130", b.Len())
	}
	for _, id := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Test(id) {
			t.Fatalf("fresh bitset has bit %d", id)
		}
		b.Set(id)
		if !b.Test(id) {
			t.Fatalf("Set(%d) did not stick", id)
		}
	}
	if b.Count() != 8 {
		t.Fatalf("Count = %d, want 8", b.Count())
	}
	b.Clear(64)
	if b.Test(64) || b.Count() != 7 {
		t.Fatal("Clear(64) failed")
	}
	b.Zero()
	if b.Count() != 0 {
		t.Fatal("Zero left bits set")
	}
}

func TestBitsetUnionAndIntersect(t *testing.T) {
	a := NewBitset(200)
	b := NewBitset(200)
	for i := 0; i < 200; i += 2 {
		a.Set(i)
	}
	for i := 0; i < 200; i += 3 {
		b.Set(i)
	}
	// multiples of 6 in [0,200): 34 of them
	if got := a.IntersectCount(b); got != 34 {
		t.Fatalf("IntersectCount = %d, want 34", got)
	}
	a.Union(b)
	want := 0
	for i := 0; i < 200; i++ {
		if i%2 == 0 || i%3 == 0 {
			want++
		}
	}
	if got := a.Count(); got != want {
		t.Fatalf("Count after union = %d, want %d", got, want)
	}
}

func TestBitsetMismatchedSizesPanic(t *testing.T) {
	a := NewBitset(10)
	b := NewBitset(20)
	defer func() {
		if recover() == nil {
			t.Fatal("Union of mismatched sizes did not panic")
		}
	}()
	a.Union(b)
}

func TestBitsetQuickSetTest(t *testing.T) {
	property := func(ids []uint16) bool {
		b := NewBitset(1 << 16)
		ref := make(map[int]bool)
		for _, raw := range ids {
			id := int(raw)
			b.Set(id)
			ref[id] = true
		}
		for id := range ref {
			if !b.Test(id) {
				return false
			}
		}
		return b.Count() == len(ref)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
