package ds

import "math/bits"

// Bitset is a fixed-capacity set of small non-negative integers packed into
// 64-bit words. Construct with NewBitset.
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset returns a Bitset covering ids in [0, n).
func NewBitset(n int) *Bitset {
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the size of the covered range.
func (b *Bitset) Len() int { return b.n }

// Set adds id to the set.
func (b *Bitset) Set(id int) { b.words[id>>6] |= 1 << uint(id&63) }

// Clear removes id from the set.
func (b *Bitset) Clear(id int) { b.words[id>>6] &^= 1 << uint(id&63) }

// Test reports whether id is in the set.
func (b *Bitset) Test(id int) bool { return b.words[id>>6]&(1<<uint(id&63)) != 0 }

// Words exposes the backing word slice for flat ascending-order scans:
// bit i of word w is id w*64+i. Callers that drain the set by zeroing
// words leave the Bitset empty and reusable without a full Zero pass.
func (b *Bitset) Words() []uint64 { return b.words }

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	total := 0
	for _, w := range b.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// Zero clears every bit.
func (b *Bitset) Zero() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Union ors other into b. Both must cover the same range.
func (b *Bitset) Union(other *Bitset) {
	if other.n != b.n {
		panic("ds: Bitset Union with mismatched sizes")
	}
	for i, w := range other.words {
		b.words[i] |= w
	}
}

// IntersectCount returns |b ∩ other| without materializing the result.
func (b *Bitset) IntersectCount(other *Bitset) int {
	if other.n != b.n {
		panic("ds: Bitset IntersectCount with mismatched sizes")
	}
	total := 0
	for i, w := range other.words {
		total += bits.OnesCount64(b.words[i] & w)
	}
	return total
}
