package ds

// IntQueue is a FIFO queue of ints backed by a reusable slice. Push/Pop are
// amortized O(1). It is designed for BFS frontiers: Reset reclaims the
// buffer without freeing it, so repeated traversals do not allocate.
//
// The zero value is ready to use.
type IntQueue struct {
	buf  []int
	head int
}

// Reset empties the queue but keeps its capacity.
func (q *IntQueue) Reset() {
	q.buf = q.buf[:0]
	q.head = 0
}

// Len returns the number of queued elements.
func (q *IntQueue) Len() int { return len(q.buf) - q.head }

// Empty reports whether the queue has no elements.
func (q *IntQueue) Empty() bool { return q.head >= len(q.buf) }

// Push appends v to the back of the queue.
func (q *IntQueue) Push(v int) {
	// Compact when the dead prefix dominates, to bound memory on long runs.
	if q.head > 1024 && q.head*2 > len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	q.buf = append(q.buf, v)
}

// Pop removes and returns the front element. It panics on an empty queue;
// callers are expected to guard with Empty or Len.
func (q *IntQueue) Pop() int {
	if q.Empty() {
		panic("ds: Pop on empty IntQueue")
	}
	v := q.buf[q.head]
	q.head++
	return v
}

// IntStack is a LIFO stack of ints with a reusable buffer.
// The zero value is ready to use.
type IntStack struct {
	buf []int
}

// Reset empties the stack but keeps its capacity.
func (s *IntStack) Reset() { s.buf = s.buf[:0] }

// Len returns the number of stacked elements.
func (s *IntStack) Len() int { return len(s.buf) }

// Push appends v to the top of the stack.
func (s *IntStack) Push(v int) { s.buf = append(s.buf, v) }

// Pop removes and returns the top element. It panics on an empty stack.
func (s *IntStack) Pop() int {
	if len(s.buf) == 0 {
		panic("ds: Pop on empty IntStack")
	}
	v := s.buf[len(s.buf)-1]
	s.buf = s.buf[:len(s.buf)-1]
	return v
}
