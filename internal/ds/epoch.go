// Package ds provides small allocation-conscious data structures shared by
// the graph engine and the LONA algorithms: epoch-based visited markers,
// integer queues, and bitsets.
//
// These are deliberately minimal. Graph traversal over large networks is
// dominated by cache behaviour; the types here avoid per-query allocation
// and per-query clearing by using generation counters and reusable buffers.
package ds

// Epoch is a visited-set over the integer range [0, n) that can be reset in
// O(1) by bumping a generation counter instead of clearing the backing
// array. A fresh Epoch (or one after Reset) reports every element unmarked.
//
// The zero value is not usable; construct with NewEpoch.
type Epoch struct {
	gen   uint32
	marks []uint32
}

// NewEpoch returns an Epoch covering ids in [0, n).
func NewEpoch(n int) *Epoch {
	return &Epoch{gen: 1, marks: make([]uint32, n)}
}

// Len returns the size of the covered range.
func (e *Epoch) Len() int { return len(e.marks) }

// Grow extends the covered range to at least n, preserving current marks.
func (e *Epoch) Grow(n int) {
	if n <= len(e.marks) {
		return
	}
	grown := make([]uint32, n)
	copy(grown, e.marks)
	e.marks = grown
}

// Reset unmarks every element in O(1) amortized. When the 32-bit generation
// counter wraps, the backing array is cleared once to stay correct.
func (e *Epoch) Reset() {
	e.gen++
	if e.gen == 0 { // wrapped: stale marks from generation 0 could alias
		for i := range e.marks {
			e.marks[i] = 0
		}
		e.gen = 1
	}
}

// Mark marks id and reports whether it was already marked this generation.
func (e *Epoch) Mark(id int) (already bool) {
	if e.marks[id] == e.gen {
		return true
	}
	e.marks[id] = e.gen
	return false
}

// Marked reports whether id is marked in the current generation.
func (e *Epoch) Marked(id int) bool { return e.marks[id] == e.gen }

// Unmark removes the mark on id, if any.
func (e *Epoch) Unmark(id int) {
	if e.marks[id] == e.gen {
		e.marks[id] = 0
	}
}
