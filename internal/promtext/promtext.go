// Package promtext validates Prometheus text exposition format (version
// 0.0.4) without depending on promtool or any Prometheus module. It
// checks what a scraper's parser would reject — malformed comment and
// sample lines, duplicate series, histogram families whose cumulative
// buckets decrease or whose +Inf bucket disagrees with _count — so tests
// and CI can fail on a broken /metrics body with a line-numbered reason.
package promtext

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// metricName matches the exposition grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// sample is one parsed series line.
type sample struct {
	name   string
	labels string // canonical "k=v,k=v" with le extracted for buckets
	le     string // the le label's raw value, when present
	value  float64
	line   int
}

// Validate checks body for exposition-format violations and returns the
// first one found (nil when the body is well-formed). Beyond line syntax
// it enforces family-level invariants:
//
//   - every sample's base family appearing after a # TYPE must match it
//     (histogram samples use the _bucket/_sum/_count suffixes);
//   - within one histogram series, bucket counts are nondecreasing in
//     ascending le order, a +Inf bucket exists, and it equals _count;
//   - no series (name + full label set) appears twice.
func Validate(body []byte) error {
	types := map[string]string{}
	seen := map[string]int{}
	var samples []sample

	lines := strings.Split(string(body), "\n")
	for ln, raw := range lines {
		n := ln + 1
		line := strings.TrimRight(raw, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := checkComment(line, n, types); err != nil {
				return err
			}
			continue
		}
		smp, err := parseSample(line, n)
		if err != nil {
			return err
		}
		key := smp.name + "{" + smp.labels
		if smp.le != "" {
			key += ",le=" + smp.le
		}
		key += "}"
		if prev, dup := seen[key]; dup {
			return fmt.Errorf("line %d: duplicate series %s (first at line %d)", n, key, prev)
		}
		seen[key] = n
		samples = append(samples, smp)
	}

	return checkFamilies(samples, types)
}

// checkComment validates a # line and records # TYPE declarations.
func checkComment(line string, n int, types map[string]string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 || fields[0] != "#" {
		// "#" followed by anything that is not HELP/TYPE is a plain
		// comment, which the format allows.
		return nil
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validName(fields[2]) {
			return fmt.Errorf("line %d: malformed HELP line %q", n, line)
		}
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("line %d: malformed TYPE line %q", n, line)
		}
		name, typ := fields[2], fields[3]
		if !validName(name) {
			return fmt.Errorf("line %d: TYPE for invalid metric name %q", n, name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("line %d: unknown metric type %q", n, typ)
		}
		if _, dup := types[name]; dup {
			return fmt.Errorf("line %d: duplicate TYPE for %q", n, name)
		}
		types[name] = typ
	}
	return nil
}

// parseSample parses one series line: name[{labels}] value [timestamp].
func parseSample(line string, n int) (sample, error) {
	s := sample{line: n}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("line %d: sample %q has no value", n, line)
	} else {
		s.name = rest[:i]
		rest = rest[i:]
	}
	if !validName(s.name) {
		return s, fmt.Errorf("line %d: invalid metric name %q", n, s.name)
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("line %d: unterminated label set in %q", n, line)
		}
		var err error
		if s.labels, s.le, err = parseLabels(rest[1:end], n); err != nil {
			return s, err
		}
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	valueField := rest
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		valueField = rest[:i]
		ts := strings.TrimSpace(rest[i+1:])
		if _, err := strconv.ParseInt(ts, 10, 64); err != nil {
			return s, fmt.Errorf("line %d: invalid timestamp %q", n, ts)
		}
	}
	v, err := parseFloat(valueField)
	if err != nil {
		return s, fmt.Errorf("line %d: invalid sample value %q", n, valueField)
	}
	s.value = v
	return s, nil
}

// parseLabels validates 'k="v",k="v"' and returns the canonical label
// string with any le label split out.
func parseLabels(body string, n int) (labels, le string, err error) {
	var kept []string
	for body != "" {
		eq := strings.IndexByte(body, '=')
		if eq < 0 {
			return "", "", fmt.Errorf("line %d: label without '=' in %q", n, body)
		}
		name := body[:eq]
		if !validName(name) {
			return "", "", fmt.Errorf("line %d: invalid label name %q", n, name)
		}
		body = body[eq+1:]
		if !strings.HasPrefix(body, `"`) {
			return "", "", fmt.Errorf("line %d: label %s value is not quoted", n, name)
		}
		body = body[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(body); i++ {
			c := body[i]
			if c == '\\' {
				if i+1 >= len(body) {
					return "", "", fmt.Errorf("line %d: dangling escape in label %s", n, name)
				}
				i++
				switch body[i] {
				case '\\', '"':
					val.WriteByte(body[i])
				case 'n':
					val.WriteByte('\n')
				default:
					return "", "", fmt.Errorf("line %d: bad escape \\%c in label %s", n, body[i], name)
				}
				continue
			}
			if c == '"' {
				body = body[i+1:]
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return "", "", fmt.Errorf("line %d: unterminated label value for %s", n, name)
		}
		if name == "le" {
			le = val.String()
			if _, err := parseFloat(le); err != nil {
				return "", "", fmt.Errorf("line %d: le=%q is not a float", n, le)
			}
		} else {
			kept = append(kept, name+"="+val.String())
		}
		body = strings.TrimPrefix(body, ",")
	}
	return strings.Join(kept, ","), le, nil
}

// parseFloat accepts the exposition format's float grammar, including
// +Inf, -Inf, and NaN.
func parseFloat(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// histSeries accumulates one histogram series' samples for the
// family-level checks.
type histSeries struct {
	buckets  []sample // in appearance order, le ascending required
	infCount float64
	hasInf   bool
	count    float64
	hasCount bool
	hasSum   bool
	line     int
}

// checkFamilies enforces TYPE consistency and histogram invariants.
func checkFamilies(samples []sample, types map[string]string) error {
	hists := map[string]*histSeries{}
	for _, smp := range samples {
		base, suffix := splitSuffix(smp.name)
		typ, declared := types[smp.name]
		if !declared {
			if t, ok := types[base]; ok && t == "histogram" && suffix != "" {
				// _bucket/_sum/_count of a declared histogram family.
				key := base + "|" + smp.labels
				hs := hists[key]
				if hs == nil {
					hs = &histSeries{line: smp.line}
					hists[key] = hs
				}
				switch suffix {
				case "_bucket":
					if smp.le == "" {
						return fmt.Errorf("line %d: %s_bucket without le label", smp.line, base)
					}
					if smp.le == "+Inf" {
						hs.hasInf, hs.infCount = true, smp.value
					} else {
						hs.buckets = append(hs.buckets, smp)
					}
				case "_sum":
					hs.hasSum = true
				case "_count":
					hs.hasCount, hs.count = true, smp.value
				}
				continue
			}
			// Untyped samples are legal; nothing more to check.
			continue
		}
		if typ == "histogram" {
			return fmt.Errorf("line %d: histogram %s exposed as a bare sample (want _bucket/_sum/_count)",
				smp.line, smp.name)
		}
		if (typ == "counter" || typ == "gauge") && suffix == "_bucket" {
			return fmt.Errorf("line %d: %s declared %s but exposes buckets", smp.line, smp.name, typ)
		}
		if typ == "counter" && smp.value < 0 {
			return fmt.Errorf("line %d: counter %s has negative value %g", smp.line, smp.name, smp.value)
		}
	}

	for key, hs := range hists {
		family := key[:strings.IndexByte(key, '|')]
		labels := key[strings.IndexByte(key, '|')+1:]
		where := family
		if labels != "" {
			where += "{" + labels + "}"
		}
		prevLE := math.Inf(-1)
		prevCount := 0.0
		for _, b := range hs.buckets {
			le, _ := parseFloat(b.le)
			if le <= prevLE {
				return fmt.Errorf("line %d: %s buckets out of le order (%g after %g)", b.line, where, le, prevLE)
			}
			if b.value < prevCount {
				return fmt.Errorf("line %d: %s cumulative bucket count decreased (%g after %g)",
					b.line, where, b.value, prevCount)
			}
			prevLE, prevCount = le, b.value
		}
		if !hs.hasInf {
			return fmt.Errorf("line %d: %s has no +Inf bucket", hs.line, where)
		}
		if hs.infCount < prevCount {
			return fmt.Errorf("line %d: %s +Inf bucket %g below last bucket %g", hs.line, where, hs.infCount, prevCount)
		}
		if !hs.hasCount || !hs.hasSum {
			return fmt.Errorf("line %d: %s missing _sum or _count", hs.line, where)
		}
		if hs.count != hs.infCount {
			return fmt.Errorf("line %d: %s _count %g != +Inf bucket %g", hs.line, where, hs.count, hs.infCount)
		}
	}
	return nil
}

// splitSuffix splits a histogram sample suffix off a metric name.
func splitSuffix(name string) (base, suffix string) {
	for _, s := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, s) {
			return strings.TrimSuffix(name, s), s
		}
	}
	return name, ""
}
