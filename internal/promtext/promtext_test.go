package promtext

import (
	"strings"
	"testing"
)

const good = `# HELP demo_requests_total Requests served.
# TYPE demo_requests_total counter
demo_requests_total 42
# HELP demo_temp Current temperature.
# TYPE demo_temp gauge
demo_temp -3.5
# HELP demo_latency_seconds Request latency.
# TYPE demo_latency_seconds histogram
demo_latency_seconds_bucket{algorithm="base",le="0.001"} 1
demo_latency_seconds_bucket{algorithm="base",le="0.01"} 3
demo_latency_seconds_bucket{algorithm="base",le="+Inf"} 4
demo_latency_seconds_sum{algorithm="base"} 0.05
demo_latency_seconds_count{algorithm="base"} 4
demo_latency_seconds_bucket{le="1"} 0
demo_latency_seconds_bucket{le="+Inf"} 0
demo_latency_seconds_sum 0
demo_latency_seconds_count 0
`

func TestValidateAcceptsWellFormed(t *testing.T) {
	if err := Validate([]byte(good)); err != nil {
		t.Fatalf("well-formed body rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		body string
		want string // substring of the error
	}{
		{"bad metric name", "9bad_name 1\n", "invalid metric name"},
		{"no value", "lonely_metric\n", "no value"},
		{"bad value", "m 12.x\n", "invalid sample value"},
		{"unterminated labels", "m{a=\"b\" 1\n", "unterminated"},
		{"unquoted label", "m{a=b} 1\n", "not quoted"},
		{"bad escape", "m{a=\"\\q\"} 1\n", "bad escape"},
		{"duplicate series", "m{a=\"b\"} 1\nm{a=\"b\"} 2\n", "duplicate series"},
		{"unknown type", "# TYPE m widget\n", "unknown metric type"},
		{"duplicate type", "# TYPE m counter\n# TYPE m counter\n", "duplicate TYPE"},
		{"negative counter", "# TYPE m counter\nm -1\n", "negative value"},
		{
			"histogram bare sample",
			"# TYPE h histogram\nh 3\n",
			"bare sample",
		},
		{
			"bucket order",
			"# TYPE h histogram\n" +
				"h_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
			"out of le order",
		},
		{
			"bucket counts decrease",
			"# TYPE h histogram\n" +
				"h_bucket{le=\"1\"} 3\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
			"count decreased",
		},
		{
			"no +Inf bucket",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
			"no +Inf bucket",
		},
		{
			"count disagrees with +Inf",
			"# TYPE h histogram\n" +
				"h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 2\n",
			"_count 2 != +Inf bucket 1",
		},
		{
			"missing sum",
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 0\nh_count 0\n",
			"missing _sum or _count",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Validate([]byte(tc.body))
			if err == nil {
				t.Fatalf("malformed body accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestValidateAcceptsSpecialFloats(t *testing.T) {
	body := "m_inf +Inf\nm_ninf -Inf\nm_nan NaN\nm_ts 1 1700000000000\n"
	if err := Validate([]byte(body)); err != nil {
		t.Fatalf("special float samples rejected: %v", err)
	}
}
