package core

import (
	"fmt"
	"strings"
)

// ParseAggregate maps an aggregate's wire/flag name (case-insensitive) to
// its enum. This is the single source of truth for the names cmd/lona's
// flags and internal/server's JSON API accept.
func ParseAggregate(name string) (Aggregate, error) {
	switch strings.ToLower(name) {
	case "sum":
		return Sum, nil
	case "avg":
		return Avg, nil
	case "wsum":
		return WeightedSum, nil
	case "count":
		return Count, nil
	case "max":
		return Max, nil
	default:
		return 0, fmt.Errorf("unknown aggregate %q (want sum, avg, wsum, count, or max)", name)
	}
}

// ParseAlgorithm maps an engine algorithm's wire/flag name
// (case-insensitive) to its enum. "auto" maps to AlgoAuto (the planner
// chooses); the serving-level "view" mode is not an algorithm and is
// handled by internal/server before this point.
func ParseAlgorithm(name string) (Algorithm, error) {
	switch strings.ToLower(name) {
	case "auto":
		return AlgoAuto, nil
	case "base":
		return AlgoBase, nil
	case "parallel":
		return AlgoBaseParallel, nil
	case "forward":
		return AlgoForward, nil
	case "forward-dist":
		return AlgoForwardDist, nil
	case "backward":
		return AlgoBackward, nil
	case "backward-naive":
		return AlgoBackwardNaive, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q (want auto, base, parallel, forward, forward-dist, backward, or backward-naive)", name)
	}
}
