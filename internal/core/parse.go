package core

import (
	"fmt"
	"strings"
)

// ParseAggregate maps an aggregate's wire/flag name (case-insensitive) to
// its enum. This is the single source of truth for the names cmd/lona's
// flags and internal/server's JSON API accept.
func ParseAggregate(name string) (Aggregate, error) {
	switch strings.ToLower(name) {
	case "sum":
		return Sum, nil
	case "avg":
		return Avg, nil
	case "wsum":
		return WeightedSum, nil
	case "count":
		return Count, nil
	case "max":
		return Max, nil
	default:
		return 0, fmt.Errorf("unknown aggregate %q (want sum, avg, wsum, count, or max)", name)
	}
}

// WireName returns the aggregate's wire/flag name, the inverse of
// ParseAggregate — what cross-process callers (the cluster transport)
// put on the wire.
func (a Aggregate) WireName() string {
	switch a {
	case Sum:
		return "sum"
	case Avg:
		return "avg"
	case WeightedSum:
		return "wsum"
	case Count:
		return "count"
	case Max:
		return "max"
	default:
		return fmt.Sprintf("aggregate-%d", uint8(a))
	}
}

// WireName returns the algorithm's wire/flag name, the inverse of
// ParseAlgorithm (String() is the paper's display name, which
// ParseAlgorithm does not accept for every algorithm).
func (a Algorithm) WireName() string {
	switch a {
	case AlgoAuto:
		return "auto"
	case AlgoBase:
		return "base"
	case AlgoBaseParallel:
		return "parallel"
	case AlgoForward:
		return "forward"
	case AlgoForwardDist:
		return "forward-dist"
	case AlgoBackward:
		return "backward"
	case AlgoBackwardNaive:
		return "backward-naive"
	default:
		return fmt.Sprintf("algorithm-%d", uint8(a))
	}
}

// ParseAlgorithm maps an engine algorithm's wire/flag name
// (case-insensitive) to its enum. "auto" maps to AlgoAuto (the planner
// chooses); the serving-level "view" mode is not an algorithm and is
// handled by internal/server before this point.
func ParseAlgorithm(name string) (Algorithm, error) {
	switch strings.ToLower(name) {
	case "auto":
		return AlgoAuto, nil
	case "base":
		return AlgoBase, nil
	case "parallel":
		return AlgoBaseParallel, nil
	case "forward":
		return AlgoForward, nil
	case "forward-dist":
		return AlgoForwardDist, nil
	case "backward":
		return AlgoBackward, nil
	case "backward-naive":
		return AlgoBackwardNaive, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q (want auto, base, parallel, forward, forward-dist, backward, or backward-naive)", name)
	}
}
