//lint:file-ignore SA1019 this file deliberately exercises the deprecated positional shims.

// Deprecated-shim coverage: the positional TopK entry points must remain
// exact delegates of Run so out-of-tree callers migrate at their own pace.
// Every other test in this package uses the Query/Run API.
package core

import "testing"

func TestDeprecatedEngineTopKDelegatesToRun(t *testing.T) {
	g := randomGraph(40, 120, 77)
	scores := randomScores(40, 77)
	e := mustEngine(t, g, scores, 2)

	want, _, err := e.Base(10, Sum)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := e.TopK(AlgoBackward, 10, Sum, &Options{Gamma: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if !sameResults(got, want) {
		t.Fatalf("shim answer %v != Base %v", got, want)
	}
	if stats.Distributed == 0 && stats.Evaluated == 0 {
		t.Fatal("shim returned no work stats")
	}
	// nil options and the auto algorithm still work through the shim.
	if _, _, err := e.TopK(AlgoBase, 5, Sum, nil); err != nil {
		t.Fatalf("nil options: %v", err)
	}
	if _, _, err := e.TopK(AlgoAuto, 5, Sum, nil); err != nil {
		t.Fatalf("auto via shim: %v", err)
	}
	if _, _, err := e.TopK(Algorithm(99), 1, Sum, nil); err == nil {
		t.Fatal("unknown algorithm accepted through the shim")
	}
}

func TestDeprecatedPlannerTopKDelegatesToRun(t *testing.T) {
	g := randomGraph(60, 180, 79)
	scores := randomScores(60, 79)
	e := mustEngine(t, g, scores, 2)
	want, _, err := e.Base(8, Sum)
	if err != nil {
		t.Fatal(err)
	}
	got, _, plan, err := NewPlanner(e).TopK(8, Sum)
	if err != nil {
		t.Fatal(err)
	}
	if !sameResults(got, want) {
		t.Fatalf("planner shim (%v) disagreed with Base", plan.Algorithm)
	}
	if plan.Reason == "" {
		t.Fatal("planner shim lost the plan rationale")
	}
}

func TestDeprecatedViewTopKDelegatesToRun(t *testing.T) {
	g := randomGraph(50, 150, 81)
	scores := randomScores(50, 81)
	v, err := NewView(g, scores, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := viewTopK(v, 7, Sum)
	if err != nil {
		t.Fatal(err)
	}
	got, err := v.TopK(7, Sum)
	if err != nil {
		t.Fatal(err)
	}
	if !sameResults(got, want) {
		t.Fatalf("view shim %v != Run %v", got, want)
	}
	if _, err := v.TopK(0, Sum); err == nil {
		t.Fatal("k=0 accepted through the view shim")
	}
	if _, err := v.TopK(3, Max); err == nil {
		t.Fatal("MAX accepted through the view shim")
	}
}
