package core

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/topk"
	"repro/internal/trace"
)

// runBackwardNaive answers a top-k query with Algorithm 2: every node with
// a non-zero score distributes it to all nodes within h hops (itself
// included), after which the accumulated values are exact and the top k
// are selected. Its cost equals Base on dense score vectors but shrinks
// proportionally when scores are sparse — the 0-1 binary setting the paper
// highlights, where zero nodes "have no contribution to the aggregate
// values" and are skipped outright.
//
// Candidates restrict only the final selection: every non-zero node still
// distributes, because non-candidate scores contribute to candidate
// aggregates.
//
// Requires an undirected graph: distribution relies on v ∈ S_h(u) ⇔
// u ∈ S_h(v).
func (e *Engine) runBackwardNaive(x *exec) (Answer, error) {
	n := e.g.NumNodes()
	agg := x.q.Aggregate
	acc := clearedF64(&x.s.acc, n)
	t := x.s.traverser(e.g)
	var stats QueryStats

	undistributedFrom := n // first node the budget prevented from distributing
	for u := 0; u < n; u++ {
		mass := e.scores[u]
		if mass == 0 {
			continue
		}
		if err := x.tick(&stats); err != nil {
			return Answer{}, err
		}
		if !x.spend() {
			undistributedFrom = u
			break
		}
		size := 0
		switch agg {
		case Sum, Avg:
			size = t.AddWithin(u, e.h, mass, acc)
		case WeightedSum:
			// Undirected BFS distances are symmetric, so distributing
			// mass/dist accumulates exactly Σ f(v)/dist(u,v) at each node.
			size = t.AddWeightedWithin(u, e.h, mass, acc)
		case Count:
			size = t.AddWithin(u, e.h, 1, acc)
		case Max:
			size = t.MaxAddWithin(u, e.h, mass, acc)
		}
		stats.Distributed++
		stats.Visited += size
	}
	// Budget truncation: nodes past the cutoff never distributed, so they
	// have not credited even their own exactly-known mass. Add it so the
	// best-effort ranking matches runBackward's truncation fallback.
	for v := undistributedFrom; v < n; v++ {
		mass := e.scores[v]
		if mass == 0 {
			continue
		}
		switch agg {
		case Sum, Avg, WeightedSum:
			acc[v] += mass
		case Count:
			acc[v]++
		case Max:
			if mass > acc[v] {
				acc[v] = mass
			}
		}
	}

	// Selection: values are final once every node has distributed, so the
	// kept offers stream as certified results (estimates only when the
	// budget truncated the distribution — then they are lower bounds).
	list := topk.New(x.q.K)
	offer := func(v int, value float64) {
		if list.Offer(v, value) {
			x.sink.kept(v, value, &stats)
		}
	}
	if agg == Avg {
		nix := e.PrepareNeighborhoodIndex(0)
		for v := 0; v < n; v++ {
			if x.eligible(v) {
				offer(v, acc[v]/float64(nix.N(v)))
			}
		}
	} else {
		for v := 0; v < n; v++ {
			if x.eligible(v) {
				offer(v, acc[v])
			}
		}
	}
	return Answer{Results: list.Items(), Stats: stats}, nil
}

// BackwardNaive is runBackwardNaive behind the positional convenience
// signature, with no cancellation, candidates, or budget.
func (e *Engine) BackwardNaive(k int, agg Aggregate) ([]Result, QueryStats, error) {
	return e.positional(Query{Algorithm: AlgoBackwardNaive, K: k, Aggregate: agg})
}

// runBackward answers a top-k query with LONA-Backward: nodes whose
// bound-score is at least gamma distribute it backward in descending score
// order; Equation 3 (tightened — see below) then upper-bounds every node's
// aggregate, and nodes are exactly verified in descending bound order,
// stopping as soon as no remaining bound can beat the k-th exact value.
//
// With P(v) the partial sum accumulated at v, l(v) the number of nodes
// that scanned v, and fRest the largest score among nodes that did NOT
// distribute (known exactly because scores are sorted — a tightening of
// the paper's f(u_l), which is always >= fRest):
//
//	F̄_sum(v) = P(v) + f(v)·[v undistributed] + fRest·(N(v) − l(v) − [v undistributed])
//
// gamma = 0 distributes every non-zero node, making the SUM bounds exact
// at BackwardNaive's distribution cost; larger gamma trades bound
// tightness for less distribution work (ablation benchmark A2 sweeps it).
//
// Candidates restrict the bound heap and the verification loop, not the
// distribution. Both distributions and verifications spend budget; a
// truncated run returns the best verified prefix.
func (e *Engine) runBackward(x *exec) (Answer, error) {
	gamma := x.q.Options.Gamma
	if gamma < 0 || gamma > 1 {
		return Answer{}, fmt.Errorf("core: backward threshold γ=%v outside [0,1]", gamma)
	}
	agg := x.q.Aggregate
	nix := e.PrepareNeighborhoodIndex(0)
	n := e.g.NumNodes()
	var stats QueryStats

	// The cached non-zero list is sorted by descending bound-score; the
	// prefix with score >= gamma distributes, and the first score below
	// gamma bounds every undistributed node's mass (fRest).
	nonZero := e.nonZeroFor(agg)
	cut := sort.Search(len(nonZero), func(i int) bool { return nonZero[i].score < gamma })
	fRest := 0.0
	if cut < len(nonZero) {
		fRest = nonZero[cut].score
	}

	partial := clearedF64(&x.s.acc, n)
	scanCount := clearedI32(&x.s.scans, n)
	distributed := clearedBools(&x.s.distributed, n)
	t := x.s.traverser(e.g)
	for _, sc := range nonZero[:cut] {
		if err := x.tick(&stats); err != nil {
			return Answer{}, err
		}
		if !x.spend() {
			break
		}
		u := int(sc.node)
		distributed[u] = true
		size := t.AddScanWithin(u, e.h, sc.score, partial, scanCount)
		stats.Distributed++
		stats.Visited += size
	}
	x.tr.Emit(trace.KindPhase, stats.Distributed, fRest, "backward distribution done")
	// estimate is the best-effort value a budget-truncated run reports for
	// an unverified node: its accumulated partial sum plus its own exactly
	// known mass when it has not distributed. Both truncation paths below
	// must use it — the budget-monotonicity guarantee TestRunBudgetTruncates
	// guards depends on the two estimates agreeing.
	estimate := func(v int) float64 {
		est := partial[v]
		if !distributed[v] {
			est += e.boundScore(v, agg)
		}
		return finishValue(agg, est, nix.N(v))
	}
	if x.truncated {
		// The partial sums are incomplete, so Equation 3 no longer bounds
		// anything; fall back to ranking candidates by what did accumulate
		// (each estimate is a lower bound of the true value, so streaming
		// the kept ones keeps any downstream merge floor admissible).
		list := topk.New(x.q.K)
		for v := 0; v < n; v++ {
			if x.eligible(v) {
				if est := estimate(v); list.Offer(v, est) {
					x.sink.kept(v, est, &stats)
				}
			}
		}
		return Answer{Results: list.Items(), Stats: stats}, nil
	}

	// Upper-bound every candidate (Equation 3, tightened) in the
	// aggregate's value domain, then verify candidates in descending bound
	// order via a max-heap — only the nodes whose bound can still beat the
	// running k-th value are ever exactly evaluated.
	heapNode := emptyI32(&x.s.heapNode, n)
	heapBound := emptyF64(&x.s.heapBound, n)
	for v := 0; v < n; v++ {
		if !x.eligible(v) {
			continue
		}
		unknown := float64(nix.N(v)) - float64(scanCount[v])
		boundSum := partial[v]
		if !distributed[v] {
			boundSum += e.boundScore(v, agg) // v's own mass is known exactly
			unknown--
		}
		if unknown > 0 {
			boundSum += fRest * unknown
		}
		heapNode = append(heapNode, int32(v))
		heapBound = append(heapBound, finishValue(agg, boundSum, nix.N(v)))
	}
	heapifyCandidates(heapNode, heapBound)

	// Stopping is strict (<) so value ties resolve identically to Base.
	// The stop threshold folds the external floor λ in: the heap is
	// bound-descending, so once the top bound falls below either the local
	// topklbound or λ, no remaining candidate can matter — locally or in
	// the global top-k the floor certifies.
	list := topk.New(x.q.K)
	for len(heapNode) > 0 {
		topNode, topBound := heapNode[0], heapBound[0]
		if threshold := x.threshold(list); threshold > 0 && topBound < threshold {
			x.tr.Emit(trace.KindCut, len(heapNode), threshold, "verification stop")
			break
		}
		if err := x.tick(&stats); err != nil {
			return Answer{}, err
		}
		if !x.spend() {
			// Budget died mid-verification. Top the list up with the
			// unverified candidates' estimates so the best-effort answer
			// never shrinks when the budget grows (a budget landing exactly
			// between distribution and verification must not return fewer
			// results than a smaller one).
			for _, node := range heapNode {
				if est := estimate(int(node)); list.Offer(int(node), est) {
					x.sink.kept(int(node), est, &stats)
				}
			}
			break
		}
		last := len(heapNode) - 1
		heapNode[0], heapBound[0] = heapNode[last], heapBound[last]
		heapNode, heapBound = heapNode[:last], heapBound[:last]
		if last > 0 {
			downCandidate(heapNode, heapBound, 0)
		}
		value, _, size := e.evaluate(t, int(topNode), agg)
		stats.Evaluated++
		stats.Visited += size
		if list.Offer(int(topNode), value) {
			x.sink.kept(int(topNode), value, &stats)
		}
	}
	return Answer{Results: list.Items(), Stats: stats}, nil
}

// Backward is runBackward behind the positional convenience signature,
// with no cancellation, candidates, or budget.
func (e *Engine) Backward(k int, agg Aggregate, gamma float64) ([]Result, QueryStats, error) {
	return e.positional(Query{Algorithm: AlgoBackward, K: k, Aggregate: agg, Options: Options{Gamma: gamma}})
}

// heapifyCandidates arranges the parallel (node, bound) arrays as a
// max-heap on bound. Struct-of-arrays keeps the sift loop's comparisons
// reading a dense float64 stream instead of 16-byte records.
func heapifyCandidates(nodes []int32, bounds []float64) {
	for i := len(nodes)/2 - 1; i >= 0; i-- {
		downCandidate(nodes, bounds, i)
	}
}

func downCandidate(nodes []int32, bounds []float64, i int) {
	n := len(nodes)
	for {
		left, right := 2*i+1, 2*i+2
		largest := i
		if left < n && bounds[left] > bounds[largest] {
			largest = left
		}
		if right < n && bounds[right] > bounds[largest] {
			largest = right
		}
		if largest == i {
			return
		}
		nodes[i], nodes[largest] = nodes[largest], nodes[i]
		bounds[i], bounds[largest] = bounds[largest], bounds[i]
		i = largest
	}
}

// BackwardBound exposes the Equation 3 upper bound LONA-Backward would
// assign to node v under threshold gamma. Tests use it to verify bound
// admissibility; it re-runs the distribution, so it is test-only in cost.
func (e *Engine) BackwardBound(v int, agg Aggregate, gamma float64) float64 {
	nix := e.PrepareNeighborhoodIndex(0)
	n := e.g.NumNodes()
	type scored struct {
		node  int32
		score float64
	}
	nonZero := make([]scored, 0, n/4)
	for u := 0; u < n; u++ {
		if s := e.boundScore(u, agg); s > 0 {
			nonZero = append(nonZero, scored{int32(u), s})
		}
	}
	sort.SliceStable(nonZero, func(i, j int) bool { return nonZero[i].score > nonZero[j].score })

	partialV := 0.0
	scans := 0
	selfDistributed := false
	fRest := 0.0
	t := graph.NewTraverser(e.g)
	for _, sc := range nonZero {
		if sc.score < gamma {
			fRest = sc.score
			break
		}
		if int(sc.node) == v {
			selfDistributed = true
		}
		t.VisitWithin(int(sc.node), e.h, func(w, _ int) {
			if w == v {
				partialV += sc.score
				scans++
			}
		})
	}
	unknown := float64(nix.N(v)) - float64(scans)
	boundSum := partialV
	if !selfDistributed {
		boundSum += e.boundScore(v, agg)
		unknown--
	}
	if unknown > 0 {
		boundSum += fRest * unknown
	}
	return finishValue(agg, boundSum, nix.N(v))
}
