package core

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/topk"
)

// BackwardNaive answers a top-k query with Algorithm 2: every node with a
// non-zero score distributes it to all nodes within h hops (itself
// included), after which the accumulated values are exact and the top k
// are selected. Its cost equals Base on dense score vectors but shrinks
// proportionally when scores are sparse — the 0-1 binary setting the paper
// highlights, where zero nodes "have no contribution to the aggregate
// values" and are skipped outright.
//
// Requires an undirected graph: distribution relies on v ∈ S_h(u) ⇔
// u ∈ S_h(v).
func (e *Engine) BackwardNaive(k int, agg Aggregate) ([]Result, QueryStats, error) {
	if err := e.checkQuery(k, agg, AlgoBackwardNaive); err != nil {
		return nil, QueryStats{}, err
	}
	n := e.g.NumNodes()
	acc := make([]float64, n)
	t := graph.NewTraverser(e.g)
	var stats QueryStats

	for u := 0; u < n; u++ {
		switch agg {
		case Sum, Avg:
			mass := e.scores[u]
			if mass == 0 {
				continue
			}
			size := 0
			t.VisitWithin(u, e.h, func(v, _ int) {
				acc[v] += mass
				size++
			})
			stats.Distributed++
			stats.Visited += size
		case WeightedSum:
			mass := e.scores[u]
			if mass == 0 {
				continue
			}
			// Undirected BFS distances are symmetric, so distributing
			// mass/dist accumulates exactly Σ f(v)/dist(u,v) at each node.
			size := 0
			t.VisitWithin(u, e.h, func(v, dist int) {
				size++
				if dist <= 1 {
					acc[v] += mass
					return
				}
				acc[v] += mass / float64(dist)
			})
			stats.Distributed++
			stats.Visited += size
		case Count:
			if e.scores[u] == 0 {
				continue
			}
			size := 0
			t.VisitWithin(u, e.h, func(v, _ int) {
				acc[v]++
				size++
			})
			stats.Distributed++
			stats.Visited += size
		case Max:
			mass := e.scores[u]
			if mass == 0 {
				continue // zero can never raise a maximum below the 0 floor
			}
			size := 0
			t.VisitWithin(u, e.h, func(v, _ int) {
				if mass > acc[v] {
					acc[v] = mass
				}
				size++
			})
			stats.Distributed++
			stats.Visited += size
		}
	}

	list := topk.New(k)
	if agg == Avg {
		nix := e.PrepareNeighborhoodIndex(0)
		for v := 0; v < n; v++ {
			list.Offer(v, acc[v]/float64(nix.N(v)))
		}
	} else {
		for v := 0; v < n; v++ {
			list.Offer(v, acc[v])
		}
	}
	return list.Items(), stats, nil
}

// Backward answers a top-k query with LONA-Backward: nodes whose
// bound-score is at least gamma distribute it backward in descending score
// order; Equation 3 (tightened — see below) then upper-bounds every node's
// aggregate, and nodes are exactly verified in descending bound order,
// stopping as soon as no remaining bound can beat the k-th exact value.
//
// With P(v) the partial sum accumulated at v, l(v) the number of nodes
// that scanned v, and fRest the largest score among nodes that did NOT
// distribute (known exactly because scores are sorted — a tightening of
// the paper's f(u_l), which is always >= fRest):
//
//	F̄_sum(v) = P(v) + f(v)·[v undistributed] + fRest·(N(v) − l(v) − [v undistributed])
//
// gamma = 0 distributes every non-zero node, making the SUM bounds exact
// at BackwardNaive's distribution cost; larger gamma trades bound
// tightness for less distribution work (ablation benchmark A2 sweeps it).
func (e *Engine) Backward(k int, agg Aggregate, gamma float64) ([]Result, QueryStats, error) {
	if err := e.checkQuery(k, agg, AlgoBackward); err != nil {
		return nil, QueryStats{}, err
	}
	if gamma < 0 || gamma > 1 {
		return nil, QueryStats{}, fmt.Errorf("core: backward threshold γ=%v outside [0,1]", gamma)
	}
	nix := e.PrepareNeighborhoodIndex(0)
	n := e.g.NumNodes()
	var stats QueryStats

	// The cached non-zero list is sorted by descending bound-score; the
	// prefix with score >= gamma distributes, and the first score below
	// gamma bounds every undistributed node's mass (fRest).
	nonZero := e.nonZeroFor(agg)
	cut := sort.Search(len(nonZero), func(i int) bool { return nonZero[i].score < gamma })
	fRest := 0.0
	if cut < len(nonZero) {
		fRest = nonZero[cut].score
	}

	partial := make([]float64, n)
	scanCount := make([]int32, n)
	distributed := make([]bool, n)
	t := graph.NewTraverser(e.g)
	for _, sc := range nonZero[:cut] {
		u := int(sc.node)
		distributed[u] = true
		size := 0
		mass := sc.score
		t.VisitWithin(u, e.h, func(v, _ int) {
			partial[v] += mass
			scanCount[v]++
			size++
		})
		stats.Distributed++
		stats.Visited += size
	}

	// Upper-bound every node (Equation 3, tightened) in the aggregate's
	// value domain, then verify candidates in descending bound order via a
	// max-heap — only the nodes whose bound can still beat the running
	// k-th value are ever exactly evaluated.
	heap := make([]backwardCandidate, n)
	for v := 0; v < n; v++ {
		unknown := float64(nix.N(v)) - float64(scanCount[v])
		boundSum := partial[v]
		if !distributed[v] {
			boundSum += e.boundScore(v, agg) // v's own mass is known exactly
			unknown--
		}
		if unknown > 0 {
			boundSum += fRest * unknown
		}
		heap[v] = backwardCandidate{int32(v), finishValue(agg, boundSum, nix.N(v))}
	}
	heapifyCandidates(heap)

	// Stopping is strict (<) so value ties resolve identically to Base.
	list := topk.New(k)
	for len(heap) > 0 {
		top := heap[0]
		if list.Full() && top.bound < list.Bound() {
			break
		}
		heap[0] = heap[len(heap)-1]
		heap = heap[:len(heap)-1]
		if len(heap) > 0 {
			downCandidate(heap, 0)
		}
		value, _, size := e.evaluate(t, int(top.node), agg)
		stats.Evaluated++
		stats.Visited += size
		list.Offer(int(top.node), value)
	}
	return list.Items(), stats, nil
}

// backwardCandidate is a node with its Equation 3 upper bound.
type backwardCandidate struct {
	node  int32
	bound float64
}

// heapifyCandidates arranges h as a max-heap on bound.
func heapifyCandidates(h []backwardCandidate) {
	for i := len(h)/2 - 1; i >= 0; i-- {
		downCandidate(h, i)
	}
}

func downCandidate(h []backwardCandidate, i int) {
	n := len(h)
	for {
		left, right := 2*i+1, 2*i+2
		largest := i
		if left < n && h[left].bound > h[largest].bound {
			largest = left
		}
		if right < n && h[right].bound > h[largest].bound {
			largest = right
		}
		if largest == i {
			return
		}
		h[i], h[largest] = h[largest], h[i]
		i = largest
	}
}

// BackwardBound exposes the Equation 3 upper bound LONA-Backward would
// assign to node v under threshold gamma. Tests use it to verify bound
// admissibility; it re-runs the distribution, so it is test-only in cost.
func (e *Engine) BackwardBound(v int, agg Aggregate, gamma float64) float64 {
	nix := e.PrepareNeighborhoodIndex(0)
	n := e.g.NumNodes()
	type scored struct {
		node  int32
		score float64
	}
	nonZero := make([]scored, 0, n/4)
	for u := 0; u < n; u++ {
		if s := e.boundScore(u, agg); s > 0 {
			nonZero = append(nonZero, scored{int32(u), s})
		}
	}
	sort.SliceStable(nonZero, func(i, j int) bool { return nonZero[i].score > nonZero[j].score })

	partialV := 0.0
	scans := 0
	selfDistributed := false
	fRest := 0.0
	t := graph.NewTraverser(e.g)
	for _, sc := range nonZero {
		if sc.score < gamma {
			fRest = sc.score
			break
		}
		if int(sc.node) == v {
			selfDistributed = true
		}
		t.VisitWithin(int(sc.node), e.h, func(w, _ int) {
			if w == v {
				partialV += sc.score
				scans++
			}
		})
	}
	unknown := float64(nix.N(v)) - float64(scans)
	boundSum := partialV
	if !selfDistributed {
		boundSum += e.boundScore(v, agg)
		unknown--
	}
	if unknown > 0 {
		boundSum += fRest * unknown
	}
	return finishValue(agg, boundSum, nix.N(v))
}
