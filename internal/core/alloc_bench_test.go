package core

import (
	"context"
	"fmt"
	"testing"
)

// BenchmarkQueryAllocs measures steady-state per-query cost and
// allocations for every algorithm over a warm engine — the numbers the
// hot-loop flattening (struct-of-arrays candidate pools, pooled dense
// scratch, closure-free BFS aggregation) is accountable to. Run with
// -benchmem; after the flattening, the per-query allocation count must
// be O(k), not O(n).
func BenchmarkQueryAllocs(b *testing.B) {
	const n, m, h, k = 4000, 16000, 2, 20
	g := randomGraph(n, m, 7)
	scores := randomScores(n, 8)
	e, err := NewEngine(g, scores, h)
	if err != nil {
		b.Fatal(err)
	}
	e.PrepareNeighborhoodIndex(0)
	e.PrepareDifferentialIndex(0)
	ctx := context.Background()

	for _, algo := range []Algorithm{AlgoBase, AlgoForward, AlgoForwardDist, AlgoBackwardNaive, AlgoBackward} {
		for _, agg := range []Aggregate{Sum, Avg} {
			q := Query{Algorithm: algo, K: k, Aggregate: agg}
			if algo == AlgoBackward {
				q.Options.Gamma = 0.5
			}
			b.Run(fmt.Sprintf("%v/%v", algo, agg), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := e.Run(ctx, q); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}

	// The sharded path always restricts candidates; the mask must come
	// from the pool, not a fresh O(n) allocation.
	cands := make([]int, 0, n/2)
	for v := 0; v < n; v += 2 {
		cands = append(cands, v)
	}
	q := Query{Algorithm: AlgoBase, K: k, Aggregate: Sum, Candidates: cands}
	b.Run("Base/SUM/candidates", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := e.Run(ctx, q); err != nil {
				b.Fatal(err)
			}
		}
	})
}
