package core

import "fmt"

// This file exports the merge bounds a distributed top-k execution needs:
// a certified per-shard upper bound on any aggregate value a shard could
// still contribute. A coordinator that has already collected k exact
// values can compare a shard's bound against the running k-th value — the
// Threshold Algorithm's stopping test [Fagin et al., PODS 2001] — and cut
// the shard short when the bound falls strictly below it, the technique
// P2P top-k systems use to bound network traffic [Akbarinia et al.].
//
// internal/cluster computes one bound per (shard engine, aggregate) and
// internal/partition's executor reuses the same bound for reporting; both
// rely on the bound being admissible (never below any true aggregate of
// the listed nodes), which TestAggregateUpperBoundAdmissible verifies.

// AggregateUpperBound returns an upper bound on F(u) over every node u in
// nodes (nil or empty means every node of the graph). The bound is
// admissible for the engine's current scores:
//
//   - With the neighborhood index built, the distribution bound
//     top(N(u)) — the sum of the N(u) largest bound-scores — is maximized
//     over the listed nodes (finished into the aggregate's value domain,
//     e.g. divided by N(u) for AVG).
//   - Without the index, a cheaper O(n) fallback: the total bound-score
//     mass for the SUM family and COUNT, the maximum score for AVG and
//     MAX. Weaker, but free — no per-node BFS is ever paid.
//
// The bound is a pure function of immutable engine state, so it is safe
// for concurrent use and callers may memoize it per aggregate.
func (e *Engine) AggregateUpperBound(agg Aggregate, nodes []int) (float64, error) {
	switch agg {
	case Sum, Avg, WeightedSum, Count, Max:
	default:
		return 0, fmt.Errorf("core: unknown aggregate %v", agg)
	}
	n := e.g.NumNodes()
	for _, v := range nodes {
		if v < 0 || v >= n {
			return 0, fmt.Errorf("core: bound node %d out of range [0,%d)", v, n)
		}
	}
	if n == 0 {
		return 0, nil
	}

	// MAX needs no distribution reasoning: no neighborhood maximum can
	// exceed the global maximum score.
	if agg == Max {
		return e.maxScore(), nil
	}

	if e.HasNeighborhoodIndex() {
		nix := e.PrepareNeighborhoodIndex(0)
		prefix := e.distributionPrefix(agg)
		best := 0.0
		bound := func(v int) float64 {
			nv := nix.N(v)
			return finishValue(agg, prefix[nv], nv)
		}
		if len(nodes) == 0 {
			for v := 0; v < n; v++ {
				if b := bound(v); b > best {
					best = b
				}
			}
		} else {
			for _, v := range nodes {
				if b := bound(v); b > best {
					best = b
				}
			}
		}
		return best, nil
	}

	// Index-free fallbacks. AVG of values each at most the maximum score
	// cannot exceed that maximum; the SUM family and COUNT cannot exceed
	// the total mass (weights are at most 1 for WSUM).
	if agg == Avg {
		return e.maxScore(), nil
	}
	total := 0.0
	for v := 0; v < n; v++ {
		total += e.boundScore(v, agg)
	}
	return total, nil
}

// maxScore returns the largest relevance in the graph.
func (e *Engine) maxScore() float64 {
	best := 0.0
	for _, s := range e.scores {
		if s > best {
			best = s
		}
	}
	return best
}

// HasNeighborhoodIndex reports whether the N(v) index is already built,
// without building it — AggregateUpperBound's "is the tight bound free?"
// question, mirroring HasDifferentialIndex.
func (e *Engine) HasNeighborhoodIndex() bool {
	e.ixMu.Lock()
	defer e.ixMu.Unlock()
	return e.nix != nil
}
