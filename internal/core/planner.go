package core

import (
	"context"
	"fmt"
	"sort"
)

// Planner chooses a query strategy from cheap statistics of the engine's
// inputs — the decision a database optimizer would make. The evaluation
// (Figures 1–6 and ablation A1) shows no single LONA algorithm dominates:
// backward processing wins when high scores are rare (small effective
// blacking mass), forward pruning wins when scores are dense and the
// differential index already exists, and the naive scan is unbeatable on
// tiny graphs where setup costs dominate.
type Planner struct {
	e *Engine
}

// NewPlanner returns a planner over e.
func NewPlanner(e *Engine) *Planner { return &Planner{e: e} }

// Plan is the planner's decision with its rationale.
type Plan struct {
	Algorithm Algorithm
	Options   Options
	Reason    string
}

// Choose picks a strategy for a (k, aggregate) query.
//
// Heuristics, in order:
//   - MAX has no transferable bound: Base (parallel if the graph is big).
//   - Directed graphs cannot distribute backward: Forward if the
//     differential index exists, otherwise Base.
//   - Sparse scores (few non-zero) make distribution almost free:
//     BackwardNaive below ~5% density, LONA-Backward below ~40% "heavy"
//     density with γ at the distribution knee.
//   - Otherwise Forward when the differential index is already built
//     (its offline cost must not be charged to one query), else
//     LONA-Backward with a γ that distributes roughly the top decile.
func (p *Planner) Choose(k int, agg Aggregate) Plan {
	e := p.e
	n := e.g.NumNodes()
	if n == 0 {
		return Plan{Algorithm: AlgoBase, Reason: "empty graph"}
	}
	if agg == Max {
		return Plan{Algorithm: AlgoBase, Reason: "MAX has no pruning bound"}
	}
	if e.g.Directed() {
		if e.HasDifferentialIndex() {
			return Plan{Algorithm: AlgoForward, Options: Options{Order: orderForAgg(agg)},
				Reason: "directed graph; differential index available"}
		}
		return Plan{Algorithm: AlgoBase, Reason: "directed graph without differential index"}
	}

	nonZero := 0
	heavy := 0 // scores >= 0.5: the mass that dominates SUM answers
	for v := 0; v < n; v++ {
		s := e.boundScore(v, agg)
		if s > 0 {
			nonZero++
		}
		if s >= 0.5 {
			heavy++
		}
	}
	density := float64(nonZero) / float64(n)
	switch {
	case density <= 0.05:
		return Plan{Algorithm: AlgoBackwardNaive,
			Reason: fmt.Sprintf("only %.1f%% non-zero scores: full distribution is cheap and exact", 100*density)}
	case float64(heavy)/float64(n) <= 0.4:
		gamma := p.gammaKnee()
		return Plan{Algorithm: AlgoBackward, Options: Options{Gamma: gamma},
			Reason: fmt.Sprintf("light score mass (%.1f%% heavy): partial distribution at γ=%.2f", 100*float64(heavy)/float64(n), gamma)}
	case e.HasDifferentialIndex():
		return Plan{Algorithm: AlgoForward, Options: Options{Order: orderForAgg(agg)},
			Reason: "dense scores with a prebuilt differential index"}
	default:
		gamma := p.gammaKnee()
		return Plan{Algorithm: AlgoBackward, Options: Options{Gamma: gamma},
			Reason: fmt.Sprintf("dense scores, no index: partial distribution at γ=%.2f", gamma)}
	}
}

// gammaKnee picks the distribution threshold so that roughly the top 10%
// of non-zero scores distribute — the knee the A2 ablation identifies
// (lower γ over-distributes, higher γ over-verifies).
func (p *Planner) gammaKnee() float64 {
	scores := p.e.scores
	nonZero := make([]float64, 0, len(scores)/4)
	for _, s := range scores {
		if s > 0 {
			nonZero = append(nonZero, s)
		}
	}
	if len(nonZero) == 0 {
		return 0.5
	}
	sort.Float64s(nonZero)
	idx := len(nonZero) - 1 - len(nonZero)/10 // 90th percentile
	if idx < 0 {
		idx = 0
	}
	gamma := nonZero[idx]
	if gamma > 1 {
		gamma = 1
	}
	return gamma
}

func orderForAgg(agg Aggregate) QueueOrder {
	if agg == Avg {
		return OrderScoreDesc
	}
	return OrderDegreeDesc
}

// Run plans and executes in one call — the same context-aware shape as
// Engine.Run, with the algorithm choice always delegated to the planner
// (q.Algorithm is overridden by AlgoAuto). The returned Answer carries the
// chosen Plan.
func (p *Planner) Run(ctx context.Context, q Query) (Answer, error) {
	q.Algorithm = AlgoAuto
	return p.e.Run(ctx, q)
}
