package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/relevance"
)

// collabEngine builds the acceptance-scale engine once: the scale-0.2
// collaboration network with the paper's mixture relevance at h=3 — a
// query heavy enough (hundreds of milliseconds for Base) that wall-clock
// cancellation timing dwarfs the scheduler's timer-delivery granularity.
var (
	collabOnce   sync.Once
	collabShared *Engine
)

func collabEngine(t *testing.T) *Engine {
	t.Helper()
	collabOnce.Do(func() {
		g := gen.Collaboration(gen.DatasetScale(0.2), 20100301)
		scores := relevance.Mixture(g, relevance.MixtureParams{BlackingRatio: 0.01}, 20100302)
		e, err := NewEngine(g, scores, 3)
		if err != nil {
			panic(err)
		}
		collabShared = e
	})
	return collabShared
}

// countingCtx counts Err() polls and reports cancellation after a preset
// number of them. Cancelling "after half the polls the uncancelled run
// performs" gives a deterministic mid-query cancellation, independent of
// timer delivery and scheduler granularity (which on busy CPUs can lag a
// real context's cancellation by several milliseconds).
type countingCtx struct {
	context.Context
	calls *atomic.Int64
	after int64 // cancel at poll number > after; 0 = never, just count
}

func (c countingCtx) Err() error {
	n := c.calls.Add(1)
	if c.after > 0 && n > c.after {
		return context.Canceled
	}
	return c.Context.Err()
}

// cancellableQueries is every strategy with its options, each valid on the
// undirected test graphs.
var cancellableQueries = []Query{
	{Algorithm: AlgoBase, K: 10, Aggregate: Sum},
	{Algorithm: AlgoBaseParallel, K: 10, Aggregate: Sum, Options: Options{Workers: 4}},
	{Algorithm: AlgoForward, K: 10, Aggregate: Sum, Options: Options{Order: OrderDegreeDesc}},
	{Algorithm: AlgoForwardDist, K: 10, Aggregate: Avg},
	{Algorithm: AlgoBackwardNaive, K: 10, Aggregate: Sum},
	{Algorithm: AlgoBackward, K: 10, Aggregate: Sum, Options: Options{Gamma: 0.1}},
}

// TestRunPreCancelled: an already-cancelled context returns
// context.Canceled from every algorithm before any traversal, and the
// engine stays fully usable afterwards.
func TestRunPreCancelled(t *testing.T) {
	g := randomGraph(60, 180, 91)
	e := mustEngine(t, g, randomScores(60, 91), 2)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	for _, q := range cancellableQueries {
		ans, err := e.Run(cancelled, q)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: err = %v, want context.Canceled", q.Algorithm, err)
		}
		if ans.Results != nil {
			t.Fatalf("%v: cancelled query leaked a partial answer", q.Algorithm)
		}
		// Reusability: the same engine answers the same query correctly.
		want, _, err := e.Base(q.K, q.Aggregate)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.Run(context.Background(), q)
		if err != nil {
			t.Fatalf("%v after cancel: %v", q.Algorithm, err)
		}
		if !sameResults(got.Results, want) {
			t.Fatalf("%v after cancel disagreed with Base", q.Algorithm)
		}
	}
	// The planner path and the View observe cancellation too.
	if _, err := e.Run(cancelled, Query{K: 5, Aggregate: Sum}); !errors.Is(err, context.Canceled) {
		t.Fatalf("AlgoAuto: err = %v, want context.Canceled", err)
	}
	v, err := NewView(g, e.Scores(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Run(cancelled, Query{K: 5, Aggregate: Sum}); !errors.Is(err, context.Canceled) {
		t.Fatalf("View.Run: err = %v, want context.Canceled", err)
	}
}

// TestRunCancelMidQuery cancels every algorithm — including the parallel
// scan's workers — deterministically halfway through its context polls:
// the run must return context.Canceled promptly and leave the engine
// reusable with correct answers.
func TestRunCancelMidQuery(t *testing.T) {
	g := randomGraph(500, 1500, 92)
	scores := randomScores(500, 92)
	e := mustEngine(t, g, scores, 2)

	for _, q := range cancellableQueries {
		q := q
		t.Run(q.Algorithm.String(), func(t *testing.T) {
			// Calibrate: count how often an uncancelled run polls.
			var count atomic.Int64
			if _, err := e.Run(countingCtx{Context: context.Background(), calls: &count}, q); err != nil {
				t.Fatal(err)
			}
			polls := count.Load()
			if polls < 2 {
				t.Fatalf("%v polled the context %d times over 500 nodes; loops are not cooperative", q.Algorithm, polls)
			}

			// Cancel halfway through the polls: a genuine mid-query abort.
			var again atomic.Int64
			ans, err := e.Run(countingCtx{Context: context.Background(), calls: &again, after: polls / 2}, q)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("%v: err = %v, want context.Canceled", q.Algorithm, err)
			}
			if ans.Results != nil {
				t.Fatalf("%v: aborted query leaked results", q.Algorithm)
			}
			// Promptness in poll units: the loop must stop within one poll
			// stride of the cancellation point, not keep traversing. The
			// parallel scan may add one lagging poll per worker.
			if got := again.Load(); got > polls/2+int64(q.Options.Workers)+2 {
				t.Fatalf("%v kept polling after cancellation: %d polls, cancel at %d", q.Algorithm, got, polls/2)
			}

			// The engine survives and still agrees with Base.
			want, _, err := e.Base(q.K, q.Aggregate)
			if err != nil {
				t.Fatal(err)
			}
			got, err := e.Run(context.Background(), q)
			if err != nil {
				t.Fatalf("%v after mid-query cancel: %v", q.Algorithm, err)
			}
			if !sameResults(got.Results, want) {
				t.Fatalf("%v diverged from Base after a cancelled run", q.Algorithm)
			}
		})
	}
}

// TestRunCancellationPromptAtScale is the wall-clock acceptance test: on
// the scale-0.2 collaboration graph, a cancelled Engine.Run returns its
// context error well before the uncancelled query's runtime.
func TestRunCancellationPromptAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("acceptance-scale graph")
	}
	e := collabEngine(t)
	q := Query{Algorithm: AlgoBase, K: 100, Aggregate: Sum}

	start := time.Now()
	if _, err := e.Run(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	uncancelled := time.Since(start)

	// Cancel a quarter of the way in. The floor keeps the delay far above
	// the scheduler's timer-delivery granularity (~10ms under load).
	delay := uncancelled / 4
	if delay < 20*time.Millisecond {
		delay = 20 * time.Millisecond
	}
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(delay, cancel)
	defer timer.Stop()
	defer cancel()

	start = time.Now()
	_, err := e.Run(ctx, q)
	aborted := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v after %v (uncancelled %v), want context.Canceled", err, aborted, uncancelled)
	}
	if uncancelled > 4*delay && aborted > uncancelled/2 {
		t.Fatalf("cancelled run took %v, want well under the uncancelled %v", aborted, uncancelled)
	}

	// The engine remains usable at full scale.
	if _, err := e.Run(context.Background(), Query{Algorithm: AlgoBase, K: 10, Aggregate: Sum, Budget: 50}); err != nil {
		t.Fatalf("engine unusable after scale cancellation: %v", err)
	}
}

// TestRunDeadlineAtScale: a deadline far shorter than the query surfaces
// context.DeadlineExceeded.
func TestRunDeadlineAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("acceptance-scale graph")
	}
	e := collabEngine(t)
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	_, err := e.Run(ctx, Query{Algorithm: AlgoBase, K: 100, Aggregate: Sum})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestRunBudgetTruncates: the traversal budget caps work and flags the
// answer, an unlimited budget does not, and budget semantics hold per
// algorithm family (evaluations for forward processing, distributions for
// backward).
func TestRunBudgetTruncates(t *testing.T) {
	g := randomGraph(120, 360, 93)
	e := mustEngine(t, g, randomScores(120, 93), 2)

	full, err := e.Run(context.Background(), Query{Algorithm: AlgoBase, K: 10, Aggregate: Sum})
	if err != nil {
		t.Fatal(err)
	}
	if full.Truncated {
		t.Fatal("unbudgeted query reported truncation")
	}
	if full.Stats.Evaluated != 120 {
		t.Fatalf("Base evaluated %d, want 120", full.Stats.Evaluated)
	}

	capped, err := e.Run(context.Background(), Query{Algorithm: AlgoBase, K: 10, Aggregate: Sum, Budget: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !capped.Truncated {
		t.Fatal("budgeted query not flagged truncated")
	}
	if capped.Stats.Evaluated != 7 {
		t.Fatalf("budget 7 evaluated %d nodes", capped.Stats.Evaluated)
	}
	if len(capped.Results) == 0 {
		t.Fatal("truncated query returned no best-effort results")
	}

	// A budget at least the full work leaves the answer exact and unflagged.
	exact, err := e.Run(context.Background(), Query{Algorithm: AlgoBase, K: 10, Aggregate: Sum, Budget: 120})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Truncated {
		t.Fatal("sufficient budget reported truncation")
	}
	if !sameResults(exact.Results, full.Results) {
		t.Fatal("sufficient budget changed the answer")
	}

	// Parallel scan: the budget is split across workers and still capped.
	par, err := e.Run(context.Background(), Query{Algorithm: AlgoBaseParallel, K: 10, Aggregate: Sum,
		Options: Options{Workers: 4}, Budget: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !par.Truncated || par.Stats.Evaluated > 8 {
		t.Fatalf("parallel budget 8: truncated=%v evaluated=%d", par.Truncated, par.Stats.Evaluated)
	}

	// Candidates concentrated in one worker's node range must not strand
	// budget on candidate-free ranges: a budget covering the whole set
	// yields the exact answer, untruncated (regression: an even split
	// gave the loaded range a quarter of the budget).
	cands := make([]int, 30)
	for i := range cands {
		cands[i] = i // all in the first of four worker ranges
	}
	seq, err := e.Run(context.Background(), Query{Algorithm: AlgoBase, K: 10, Aggregate: Sum, Candidates: cands})
	if err != nil {
		t.Fatal(err)
	}
	parC, err := e.Run(context.Background(), Query{Algorithm: AlgoBaseParallel, K: 10, Aggregate: Sum,
		Options: Options{Workers: 4}, Candidates: cands, Budget: 30})
	if err != nil {
		t.Fatal(err)
	}
	if parC.Truncated {
		t.Fatal("budget equal to the candidate count still truncated the parallel scan")
	}
	if !sameResults(parC.Results, seq.Results) {
		t.Fatalf("budgeted parallel candidates diverged: %v vs %v", parC.Results, seq.Results)
	}

	// BackwardNaive truncation credits undistributed nodes' own mass, so
	// a high-score node late in id order still ranks by at least itself.
	bn, err := e.Run(context.Background(), Query{Algorithm: AlgoBackwardNaive, K: 120, Aggregate: Sum, Budget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !bn.Truncated {
		t.Fatal("backward-naive budget 1 not flagged truncated")
	}
	rank := make(map[int]float64, len(bn.Results))
	for _, r := range bn.Results {
		rank[r.Node] = r.Value
	}
	for v, s := range e.Scores() {
		if got, ok := rank[v]; ok && got < s-1e-9 {
			t.Fatalf("truncated backward-naive ranked node %d at %v, below its own score %v", v, got, s)
		}
	}

	// Backward: distributions spend the same budget.
	back, err := e.Run(context.Background(), Query{Algorithm: AlgoBackward, K: 10, Aggregate: Sum, Budget: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !back.Truncated {
		t.Fatal("backward budget 3 not flagged truncated")
	}
	if spent := back.Stats.Distributed + back.Stats.Evaluated; spent > 3 {
		t.Fatalf("backward spent %d traversals on budget 3", spent)
	}

	if _, err := e.Run(context.Background(), Query{Algorithm: AlgoBase, K: 10, Aggregate: Sum, Budget: -1}); err == nil {
		t.Fatal("negative budget accepted")
	}

	// Monotonicity at the distribution/verification boundary (regression:
	// a budget exhausted exactly between the two phases used to return an
	// empty list while a strictly smaller budget returned a full one).
	unbudgeted, err := e.Run(context.Background(), Query{Algorithm: AlgoBackward, K: 10, Aggregate: Sum})
	if err != nil {
		t.Fatal(err)
	}
	d := unbudgeted.Stats.Distributed
	for _, b := range []int{d - 1, d, d + 1} {
		ans, err := e.Run(context.Background(), Query{Algorithm: AlgoBackward, K: 10, Aggregate: Sum, Budget: b})
		if err != nil {
			t.Fatal(err)
		}
		if len(ans.Results) != 10 {
			t.Fatalf("backward budget %d (distributions=%d) returned %d results, want a full best-effort 10", b, d, len(ans.Results))
		}
	}
}

// TestRunCandidates: a candidate restriction ranks exactly the candidate
// set — with non-candidate scores still contributing — identically across
// every algorithm, matching a brute-force filter of the full Base ranking.
func TestRunCandidates(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		seed := int64(500 + trial)
		n := 40 + trial*13
		g := randomGraph(n, 3*n, seed)
		scores := randomScores(n, seed)
		e := mustEngine(t, g, scores, 2)

		// Ground truth: full Base ranking over all n, filtered to the set.
		all, _, err := e.Base(n, Sum)
		if err != nil {
			t.Fatal(err)
		}
		cands := make([]int, 0, n/3)
		inSet := make(map[int]bool)
		for v := 0; v < n; v += 3 {
			cands = append(cands, v)
			inSet[v] = true
		}
		want := make([]Result, 0, 10)
		for _, r := range all {
			if inSet[r.Node] {
				want = append(want, r)
				if len(want) == 10 {
					break
				}
			}
		}

		for _, algo := range Algorithms {
			got, err := e.Run(context.Background(), Query{
				Algorithm: algo, K: 10, Aggregate: Sum, Candidates: cands,
				Options: Options{Gamma: 0.3, Workers: 3},
			})
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, algo, err)
			}
			if !sameResults(got.Results, want) {
				t.Fatalf("trial %d %v candidates: got %v want %v", trial, algo, got.Results, want)
			}
			for _, r := range got.Results {
				if !inSet[r.Node] {
					t.Fatalf("trial %d %v ranked non-candidate %d", trial, algo, r.Node)
				}
			}
		}

		// The view agrees under the same restriction.
		v, err := NewView(g, scores, 2)
		if err != nil {
			t.Fatal(err)
		}
		vans, err := v.Run(context.Background(), Query{K: 10, Aggregate: Sum, Candidates: cands})
		if err != nil {
			t.Fatal(err)
		}
		if !sameResults(vans.Results, want) {
			t.Fatalf("trial %d view candidates: got %v want %v", trial, vans.Results, want)
		}
	}
}

// TestRunCandidateValidation: out-of-range candidates are rejected by both
// the engine and the view; duplicates are tolerated.
func TestRunCandidateValidation(t *testing.T) {
	g := randomGraph(20, 60, 95)
	scores := randomScores(20, 95)
	e := mustEngine(t, g, scores, 1)
	if _, err := e.Run(context.Background(), Query{Algorithm: AlgoBase, K: 3, Aggregate: Sum, Candidates: []int{5, 20}}); err == nil {
		t.Fatal("out-of-range candidate accepted")
	}
	if _, err := e.Run(context.Background(), Query{Algorithm: AlgoBase, K: 3, Aggregate: Sum, Candidates: []int{-1}}); err == nil {
		t.Fatal("negative candidate accepted")
	}
	dup, err := e.Run(context.Background(), Query{Algorithm: AlgoBase, K: 3, Aggregate: Sum, Candidates: []int{4, 4, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(dup.Results) != 1 || dup.Results[0].Node != 4 {
		t.Fatalf("duplicate candidates gave %v, want just node 4", dup.Results)
	}
	v, err := NewView(g, scores, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Run(context.Background(), Query{K: 3, Aggregate: Sum, Candidates: []int{21}}); err == nil {
		t.Fatal("view accepted out-of-range candidate")
	}
}

// TestRunConcurrentWithCancellations races cancelled and uncancelled
// queries on one shared engine under -race: cancellation must not corrupt
// the lazily built shared state the next query reads.
func TestRunConcurrentWithCancellations(t *testing.T) {
	g := randomGraph(150, 450, 97)
	scores := randomScores(150, 97)
	e := mustEngine(t, g, scores, 2)
	want, _, err := e.Base(10, Sum)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 12)
	for w := 0; w < 12; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			q := cancellableQueries[w%len(cancellableQueries)]
			q.K = 10
			for i := 0; i < 10; i++ {
				if w%2 == 0 {
					ctx, cancel := context.WithCancel(context.Background())
					cancel()
					if _, err := e.Run(ctx, q); !errors.Is(err, context.Canceled) {
						errs <- err
						return
					}
				} else if ans, err := e.Run(context.Background(), q); err != nil {
					errs <- err
					return
				} else if q.Aggregate == Sum && !sameResults(ans.Results, want) {
					errs <- errors.New(q.Algorithm.String() + ": racing query diverged from Base")
					return
				}
			}
			errs <- nil
		}(w)
	}
	wg.Wait()
	for w := 0; w < 12; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
