package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// This file is the core half of the mutate-vs-rebuild equivalence
// harness: random structural edit scripts applied incrementally through
// View.ApplyEdits (graph derivation + neighborhood-index repair +
// aggregate repair) must leave a state byte-identical — float bits
// included — to tearing everything down and rebuilding from scratch over
// the mutated topology, across all aggregates × algorithms × four graph
// shapes. The graph-level half (CSR equivalence) lives in
// internal/graph/mutate_test.go; here the stake is the query surface.

// mutateShapes are the four topologies the equivalence scripts run over.
func mutateShapes() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"ba":        gen.BarabasiAlbert(300, 3, 7),
		"er":        gen.ErdosRenyi(250, 600, 13),
		"ws":        gen.WattsStrogatz(240, 6, 0.2, 19),
		"community": gen.PlantedPartition(260, 4, 0.08, 0.004, 23),
	}
}

// quantizedScores draws relevances from {0, 1/8, …, 1} so ties are
// common and the (value desc, id asc) tie-break is genuinely exercised.
func quantizedScores(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = float64(rng.Intn(9)) / 8
	}
	return scores
}

// randomEdits draws a batch of legal edits against an n-node undirected
// graph: inserts (possibly duplicates — no-ops), removals (possibly
// absent — no-ops), and node additions. Ids stay within the evolving
// node count, including nodes added earlier in the same batch.
func randomEdits(rng *rand.Rand, g *graph.Graph, batch int) []graph.Edit {
	n := g.NumNodes()
	edits := make([]graph.Edit, 0, batch)
	for len(edits) < batch {
		switch rng.Intn(8) {
		case 0:
			edits = append(edits, graph.Edit{Op: graph.EditAddNode})
			n++
		case 1, 2, 3:
			// Aim removals at real edges most of the time so the script
			// actually shrinks neighborhoods.
			u := rng.Intn(n)
			if g != nil && u < g.NumNodes() && g.Degree(u) > 0 && rng.Intn(4) > 0 {
				nbrs := g.Neighbors(u)
				edits = append(edits, graph.Edit{Op: graph.EditRemoveEdge, U: u, V: int(nbrs[rng.Intn(len(nbrs))])})
			} else if v := rng.Intn(n); v != u {
				edits = append(edits, graph.Edit{Op: graph.EditRemoveEdge, U: u, V: v})
			}
		default:
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				edits = append(edits, graph.Edit{Op: graph.EditAddEdge, U: u, V: v})
			}
		}
	}
	return edits
}

// rebuildFromScratch reconstructs a graph through the Builder over the
// current edge set — the from-scratch path incremental edits must match
// (internal/graph proves the CSR arrays agree bytewise; reusing its
// output here is therefore the same oracle).
func rebuildFromScratch(g *graph.Graph) *graph.Graph {
	b := graph.NewBuilder(g.NumNodes(), g.Directed())
	for u := 0; u < g.NumNodes(); u++ {
		for _, v := range g.Neighbors(u) {
			if g.Directed() || int(v) > u {
				b.AddEdge(u, int(v))
			}
		}
	}
	return b.Build()
}

// TestMutateEquivalence drives random edit scripts (interleaved with
// relevance updates) through a live View and a per-generation engine and
// checks, at every generation, byte-identical state and answers against
// full rebuilds.
func TestMutateEquivalence(t *testing.T) {
	const h, k, rounds = 2, 12, 5
	ctx := context.Background()
	for name, start := range mutateShapes() {
		rng := rand.New(rand.NewSource(int64(len(name)) * 101))
		view, err := NewView(start, quantizedScores(start.NumNodes(), 41), h)
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < rounds; round++ {
			script := randomEdits(rng, view.Graph(), 1+rng.Intn(10))
			if _, err := view.ApplyEdits(ctx, script); err != nil {
				t.Fatalf("%s round %d: %v", name, round, err)
			}
			// Interleave a relevance update so edits compose with the
			// incremental score-repair path, including on added nodes.
			node := rng.Intn(view.Graph().NumNodes())
			if _, err := view.UpdateScore(node, float64(rng.Intn(9))/8); err != nil {
				t.Fatalf("%s round %d: update: %v", name, round, err)
			}

			g := view.Graph()
			scores := view.ScoresCopy()
			rebuilt := rebuildFromScratch(g)
			fresh, err := NewView(rebuilt, scores, h)
			if err != nil {
				t.Fatal(err)
			}

			// Materialized state: float bits, not approximate equality.
			for u := 0; u < g.NumNodes(); u++ {
				if math.Float64bits(view.Sum(u)) != math.Float64bits(fresh.Sum(u)) {
					t.Fatalf("%s round %d: sum(%d) = %x incremental vs %x rebuilt",
						name, round, u, math.Float64bits(view.Sum(u)), math.Float64bits(fresh.Sum(u)))
				}
			}
			incIx, freshIx := view.NeighborhoodIndex(), fresh.NeighborhoodIndex()
			for u := 0; u < g.NumNodes(); u++ {
				if incIx.N(u) != freshIx.N(u) {
					t.Fatalf("%s round %d: N(%d) = %d incremental vs %d rebuilt",
						name, round, u, incIx.N(u), freshIx.N(u))
				}
			}

			// View answers for its three aggregates.
			for _, agg := range []Aggregate{Sum, Avg, Count} {
				got, err1 := view.Run(ctx, Query{K: k, Aggregate: agg})
				want, err2 := fresh.Run(ctx, Query{K: k, Aggregate: agg})
				if err1 != nil || err2 != nil {
					t.Fatalf("%s round %d %v: %v / %v", name, round, agg, err1, err2)
				}
				assertIdenticalResults(t, name, round, agg.String()+"/view", got.Results, want.Results)
			}

			// Engine answers: a successor engine adopting the repaired
			// index vs a fresh engine paying the full index build.
			inc, err := NewEngine(g, scores, h)
			if err != nil {
				t.Fatal(err)
			}
			if err := inc.AdoptNeighborhoodIndex(incIx); err != nil {
				t.Fatal(err)
			}
			ref, err := NewEngine(rebuilt, scores, h)
			if err != nil {
				t.Fatal(err)
			}
			ref.PrepareNeighborhoodIndex(0)
			for _, agg := range []Aggregate{Sum, Avg, WeightedSum, Count, Max} {
				for _, algo := range append([]Algorithm{AlgoAuto}, Algorithms...) {
					q := Query{Algorithm: algo, K: k, Aggregate: agg}
					got, err1 := inc.Run(ctx, q)
					want, err2 := ref.Run(ctx, q)
					if (err1 == nil) != (err2 == nil) {
						t.Fatalf("%s round %d %v/%v: incremental err=%v, rebuilt err=%v",
							name, round, agg, algo, err1, err2)
					}
					if err1 != nil {
						continue // e.g. MAX under Forward — rejected identically
					}
					assertIdenticalResults(t, name, round, agg.String()+"/"+algo.String(), got.Results, want.Results)
				}
			}
		}
	}
}

// assertIdenticalResults requires exact equality: nodes, order, and
// value bits.
func assertIdenticalResults(t *testing.T, name string, round int, label string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s round %d %s: %d results, want %d", name, round, label, len(got), len(want))
	}
	for i := range want {
		if got[i].Node != want[i].Node ||
			math.Float64bits(got[i].Value) != math.Float64bits(want[i].Value) {
			t.Fatalf("%s round %d %s: result %d = %+v, want %+v", name, round, label, i, got[i], want[i])
		}
	}
}

// TestViewApplyEditsAtomic: failed validation and cancelled contexts
// leave the view untouched and still consistent with a rebuild.
func TestViewApplyEditsAtomic(t *testing.T) {
	g := gen.BarabasiAlbert(120, 3, 3)
	view, err := NewView(g, quantizedScores(120, 5), 2)
	if err != nil {
		t.Fatal(err)
	}
	before := view.Sum(7)
	if _, err := view.ApplyEdits(context.Background(), []graph.Edit{
		{Op: graph.EditAddEdge, U: 0, V: 1000},
	}); err == nil {
		t.Fatal("out-of-range edit accepted")
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := view.ApplyEdits(cancelled, []graph.Edit{
		{Op: graph.EditAddEdge, U: 0, V: 60},
	}); err != context.Canceled {
		t.Fatalf("cancelled context: err=%v", err)
	}
	if view.Graph() != g || view.Sum(7) != before {
		t.Fatal("failed batch mutated the view")
	}
}

// TestViewApplyEditsAddNode: a node added then scored participates in
// aggregates exactly as if it had been present from the start.
func TestViewApplyEditsAddNode(t *testing.T) {
	ctx := context.Background()
	g := graph.FromEdges(3, false, [][2]int{{0, 1}, {1, 2}})
	view, err := NewView(g, []float64{0.5, 0.25, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := view.ApplyEdits(ctx, []graph.Edit{
		{Op: graph.EditAddNode},
		{Op: graph.EditAddEdge, U: 3, V: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NodesAdded != 1 || res.EdgesAdded != 1 {
		t.Fatalf("result %+v", res)
	}
	if view.Score(3) != 0 || view.Sum(3) != 0.5 /* its only scored neighbor is node 0 */ {
		t.Fatalf("new node: score=%v sum=%v", view.Score(3), view.Sum(3))
	}
	if _, err := view.UpdateScore(3, 1); err != nil {
		t.Fatal(err)
	}
	fresh, err := NewView(view.Graph(), view.ScoresCopy(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 4; u++ {
		if math.Float64bits(view.Sum(u)) != math.Float64bits(fresh.Sum(u)) {
			t.Fatalf("sum(%d): %v vs %v", u, view.Sum(u), fresh.Sum(u))
		}
	}
}

// TestAdoptNeighborhoodIndexValidation: mismatched radius or node count
// must be rejected — silently adopting a stale index yields wrong, not
// slow, answers.
func TestAdoptNeighborhoodIndexValidation(t *testing.T) {
	g := graph.FromEdges(4, false, [][2]int{{0, 1}, {2, 3}})
	e, err := NewEngine(g, []float64{1, 0, 1, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AdoptNeighborhoodIndex(nil); err == nil {
		t.Fatal("nil index adopted")
	}
	if err := e.AdoptNeighborhoodIndex(graph.BuildNeighborhoodIndex(g, 1, 0)); err == nil {
		t.Fatal("index for h=1 adopted into h=2 engine")
	}
	bigger, _ := g.AddNode()
	if err := e.AdoptNeighborhoodIndex(graph.BuildNeighborhoodIndex(bigger, 2, 0)); err == nil {
		t.Fatal("index over 5 nodes adopted into 4-node engine")
	}
	good := graph.BuildNeighborhoodIndex(g, 2, 0)
	if err := e.AdoptNeighborhoodIndex(good); err != nil {
		t.Fatal(err)
	}
	if !e.HasNeighborhoodIndex() {
		t.Fatal("adopted index not visible")
	}
}
