package core

import (
	"repro/internal/graph"
	"repro/internal/topk"
	"repro/internal/trace"
)

// runForward answers a top-k query with LONA-Forward (Algorithm 1): naive
// forward processing augmented with differential-index pruning. After a
// node u is exactly evaluated, every 1-hop neighbor v gets the upper bound
//
//	F̄_sum(v) = min( F_sum(u) + delta(v−u),  N(v) − 1 + f(v) )   (Eq. 1)
//	F̄_avg(v) = F̄_sum(v) / N(v)                                   (Eq. 2)
//
// and is pruned — never evaluated — once the top-k list is full and the
// bound falls strictly below the list's lower bound. Strict comparison
// keeps the result byte-identical to Base under the deterministic
// (value desc, id asc) tie-break.
//
// Under a candidate restriction only candidates are evaluated, pruned, or
// offered; every evaluated node still bounds its neighbors, so the proof
// obligation (each candidate evaluated or pruned with a certified bound)
// is unchanged.
//
// The differential index and the N(v) index are built on first use; call
// PrepareDifferentialIndex / PrepareNeighborhoodIndex beforehand to pay
// that cost explicitly (the paper treats both as precomputed).
func (e *Engine) runForward(x *exec) (Answer, error) {
	nix := e.PrepareNeighborhoodIndex(0)
	dix := e.PrepareDifferentialIndex(0)
	if err := graph.CheckIndexCompatibility(e.h, nix, dix); err != nil {
		return Answer{}, err
	}

	n := e.g.NumNodes()
	agg := x.q.Aggregate
	queue := e.queueFor(x.q.Options.Order)
	pruned := clearedBools(&x.s.pruned, n)
	processed := clearedBools(&x.s.processed, n)
	t := x.s.traverser(e.g)
	list := topk.New(x.q.K)
	var stats QueryStats

	for _, u32 := range queue {
		u := int(u32)
		processed[u] = true
		if pruned[u] || !x.eligible(u) {
			continue
		}
		if err := x.tick(&stats); err != nil {
			return Answer{}, err
		}
		if x.ceilingCut() {
			// The external λ passed the ceiling over every candidate:
			// the rest of the queue cannot reach the global top-k.
			x.tr.Emit(trace.KindCut, 0, x.floorCache, "λ above scan ceiling")
			break
		}
		if !x.spend() {
			break
		}
		value, boundSum, size := e.evaluate(t, u, agg)
		stats.Evaluated++
		stats.Visited += size
		if list.Offer(u, value) {
			x.sink.kept(u, value, &stats)
		}

		// The pruning threshold folds the external floor λ in; the floor
		// alone can prune before the local list even fills.
		threshold := x.threshold(list)
		if threshold == 0 {
			continue // both bounds vacuous; nothing can be pruned
		}
		arcLo, arcHi := e.g.ArcRange(u)
		nbrs := e.g.Neighbors(u)
		for i, p := 0, arcLo; p < arcHi; i, p = i+1, p+1 {
			v := int(nbrs[i])
			if pruned[v] || processed[v] || !x.eligible(v) {
				continue
			}
			nv := nix.N(v)
			fb := boundSum + float64(dix.DeltaArc(p))
			if selfCap := float64(nv-1) + e.boundScore(v, agg); selfCap < fb {
				fb = selfCap
			}
			if finishValue(agg, fb, nv) < threshold {
				pruned[v] = true
				stats.Pruned++
			}
		}
	}
	return Answer{Results: list.Items(), Stats: stats}, nil
}

// Forward is runForward behind the positional convenience signature, with
// no cancellation, candidates, or budget.
func (e *Engine) Forward(k int, agg Aggregate, order QueueOrder) ([]Result, QueryStats, error) {
	return e.positional(Query{Algorithm: AlgoForward, K: k, Aggregate: agg, Options: Options{Order: order}})
}

// ForwardBound exposes Equation 1/2's upper bound for a single evaluated
// node u and neighbor v (v must be adjacent to u). Tests use it to verify
// bound admissibility directly; it is not on the query hot path.
func (e *Engine) ForwardBound(u, v int, agg Aggregate) float64 {
	nix := e.PrepareNeighborhoodIndex(0)
	dix := e.PrepareDifferentialIndex(0)
	t := graph.NewTraverser(e.g)
	_, boundSum, _ := e.evaluate(t, u, agg)

	arcLo, arcHi := e.g.ArcRange(u)
	nbrs := e.g.Neighbors(u)
	for i, p := 0, arcLo; p < arcHi; i, p = i+1, p+1 {
		if int(nbrs[i]) != v {
			continue
		}
		nv := nix.N(v)
		fb := boundSum + float64(dix.DeltaArc(p))
		if selfCap := float64(nv-1) + e.boundScore(v, agg); selfCap < fb {
			fb = selfCap
		}
		return finishValue(agg, fb, nv)
	}
	panic("core: ForwardBound on non-adjacent pair")
}
