package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/ds"
	"repro/internal/graph"
	"repro/internal/topk"
	"repro/internal/trace"
)

// View is a materialized neighborhood-aggregate view with incremental
// maintenance — the dynamic-network extension the paper's introduction
// motivates ("the intrusion packets could formulate a large, dynamic
// intrusion network") and its related work points at via materialized
// top-k views [Yi et al., ICDE 2003].
//
// The view materializes F_sum(u) for every node once (one backward
// distribution pass) and then maintains it under relevance updates: when
// f(v) changes by δ, exactly the nodes of S_h(v) change their aggregate,
// and by symmetry of undirected h-hop membership the view fixes them with
// a single BFS from v — O(|S_h(v)|) per update instead of a full
// recomputation. Top-k answers then cost one O(n) heap scan.
//
// Only SUM and AVG are maintainable this way (COUNT changes only on
// zero-crossings, which this view also handles; MAX is not decrementable
// without recount and is unsupported).
//
// # Concurrency contract
//
// A View is NOT internally synchronized. It is safe under the standard
// RWMutex discipline, which internal/server relies on and
// TestViewRWMutexDiscipline verifies under the race detector:
//
//   - Readers (Score, Sum, Run, TopK, ScoresCopy) may run concurrently
//     with each other: they only load from scores/sums/counts and never
//     touch the shared Traverser.
//   - Writers (UpdateScore, ApplyEdits, Rebuild) require exclusive access:
//     they mutate the materialized arrays (and, for structural edits, swap
//     the graph and index) and reuse the View's single Traverser.
//
// Concurrent readers with no writer are safe; any writer must exclude both
// readers and other writers.
type View struct {
	g      *graph.Graph
	h      int
	scores []float64 // owned copy; mutated by UpdateScore
	sums   []float64 // materialized F_sum
	counts []int32   // materialized positive-score counts (for COUNT)
	nix    *graph.NeighborhoodIndex
	t      *graph.Traverser
}

// NewView materializes the view. Cost: one full distribution pass, the
// same as BackwardNaive over a fully non-zero score vector.
func NewView(g *graph.Graph, scores []float64, h int) (*View, error) {
	if g.Directed() {
		return nil, fmt.Errorf("core: View requires an undirected graph")
	}
	e, err := NewEngine(g, scores, h)
	if err != nil {
		return nil, err
	}
	v := &View{
		g:      g,
		h:      h,
		scores: append([]float64(nil), scores...),
		sums:   make([]float64, g.NumNodes()),
		counts: make([]int32, g.NumNodes()),
		nix:    e.PrepareNeighborhoodIndex(0),
		t:      graph.NewTraverser(g),
	}
	if err := distributePass(context.Background(), g, v.t, scores, h, v.sums, v.counts); err != nil {
		return nil, err // unreachable with a background context
	}
	return v, nil
}

// distributePass runs the canonical backward distribution — every
// non-zero node u adds its mass to all of S_h(u), in ascending u — into
// zeroed sums/counts arrays. NewView, Rebuild, and ApplyEdits' rebuild
// fallback all share this one loop, so the float summation order that
// the byte-identical repair guarantee replays can never drift between
// them. The context is polled every few sources; on cancellation the
// output arrays are partially filled and must be discarded.
func distributePass(ctx context.Context, g *graph.Graph, t *graph.Traverser,
	scores []float64, h int, sums []float64, counts []int32) error {
	const pollEvery = 64
	for u := 0; u < g.NumNodes(); u++ {
		mass := scores[u]
		if mass == 0 {
			continue
		}
		if u%pollEvery == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		t.VisitWithin(u, h, func(w, _ int) {
			sums[w] += mass
			counts[w]++
		})
	}
	return nil
}

// Score returns the current relevance of node u.
func (v *View) Score(u int) float64 { return v.scores[u] }

// Graph returns the view's current graph — the successor graph after any
// ApplyEdits, which the serving layer adopts as its own current topology.
func (v *View) Graph() *graph.Graph { return v.g }

// NeighborhoodIndex returns the view's current N(v) index (repaired in
// step with structural edits). Callers treat it as immutable; ApplyEdits
// replaces rather than mutates it, so an Engine seeded with it stays
// consistent even while the view moves on.
func (v *View) NeighborhoodIndex() *graph.NeighborhoodIndex { return v.nix }

// ScoresCopy returns a snapshot copy of the current relevance vector —
// what a server hands to Engine.WithScores after an update batch.
func (v *View) ScoresCopy() []float64 { return append([]float64(nil), v.scores...) }

// Sum returns the materialized F_sum(u).
func (v *View) Sum(u int) float64 { return v.sums[u] }

// UpdateScore changes f(node) to newScore and repairs every affected
// aggregate with one h-hop BFS. It returns how many aggregates changed.
func (v *View) UpdateScore(node int, newScore float64) (touched int, err error) {
	if node < 0 || node >= v.g.NumNodes() {
		return 0, fmt.Errorf("core: node %d out of range [0,%d)", node, v.g.NumNodes())
	}
	if math.IsNaN(newScore) || newScore < 0 || newScore > 1 {
		return 0, fmt.Errorf("core: new score %v outside [0,1]", newScore)
	}
	old := v.scores[node]
	if old == newScore {
		return 0, nil
	}
	delta := newScore - old
	var countDelta int32
	if old == 0 && newScore > 0 {
		countDelta = 1
	}
	if old > 0 && newScore == 0 {
		countDelta = -1
	}
	v.scores[node] = newScore
	v.t.VisitWithin(node, v.h, func(w, _ int) {
		v.sums[w] += delta
		v.counts[w] += countDelta
		touched++
	})
	return touched, nil
}

// EditResult reports what one structural edit batch did to a View.
type EditResult struct {
	NodesAdded   int  // nodes appended (relevance 0 until updated)
	EdgesAdded   int  // logical edges inserted (duplicates were no-ops)
	EdgesRemoved int  // logical edges deleted (absent deletes were no-ops)
	Repaired     int  // nodes whose aggregates and N(v) were recomputed
	Rebuilt      bool // the batch took the from-scratch rebuild path
}

// ApplyEdits applies a structural edit batch — edge insertions/removals
// and node additions — and repairs the materialized state incrementally:
// only the nodes whose h-hop neighborhood changed (the old∪new h-hop
// closures of the touched endpoints) have their aggregates and N(v)
// recomputed, instead of the full distribution pass a rebuild costs.
// When the affected closure covers most of the graph (≥ two thirds of
// its nodes) the incremental path loses to a from-scratch rebuild, and
// ApplyEdits automatically falls back to one — same results, same float
// bits, different cost curve. Added nodes start at relevance 0; follow
// with UpdateScore to score them.
//
// Repaired aggregates are byte-identical to a from-scratch Rebuild: each
// affected node's sum is re-accumulated over its sorted neighborhood in
// ascending node-id order, exactly the summation order the full
// distribution pass produces, so float bits never drift between the
// incremental and rebuilt states (mutate_equiv_test.go enforces this).
//
// ApplyEdits is a writer under the View's RWMutex discipline. The batch
// is atomic: a validation error, or ctx expiring mid-repair, leaves the
// view at its pre-batch state (all repair work lands in fresh arrays that
// are swapped in only on success).
func (v *View) ApplyEdits(ctx context.Context, edits []graph.Edit) (EditResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var res EditResult
	newG, delta, err := v.g.ApplyEdits(edits)
	if err != nil {
		return res, err
	}
	if newG.Directed() {
		// Unreachable (NewView rejects directed graphs); guard anyway so
		// the undirected closure reasoning below can rely on symmetry.
		return res, fmt.Errorf("core: View.ApplyEdits requires an undirected graph")
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	affected := graph.AffectedNodes(v.g, newG, delta, v.h)

	// Crossover: per-node incremental repair pays one BFS per affected
	// node (the ascending-order accumulation rides the same pass via a
	// bitset drain — no sort), while a rebuild pays one distribution pass
	// over the non-zero nodes plus one index build. With the sort gone,
	// repair stays cheaper until the affected closure covers nearly the
	// whole graph, so the threshold sits at ⅚ rather than the old ⅔ —
	// and the rebuild still produces byte-identical state, since repair
	// reproduces its ascending-id summation order exactly.
	if 6*len(affected) >= 5*newG.NumNodes() {
		trace.FromContext(ctx).Emit(trace.KindRebuild, len(affected),
			0, "affected closure covers most of the graph")
		return v.rebuildFrom(ctx, newG, delta)
	}
	trace.FromContext(ctx).Emit(trace.KindRepair, len(affected), 0, "")

	n := newG.NumNodes()
	scores := make([]float64, n)
	copy(scores, v.scores) // added nodes start at relevance 0
	sums := make([]float64, n)
	copy(sums, v.sums)
	counts := make([]int32, n)
	copy(counts, v.counts)
	sizes := make([]int32, n)
	copy(sizes, v.nix.Size)

	// Repair the affected nodes in parallel: one BFS per node serves the
	// aggregate AND its N(v) entry (fusing what a separate index Repair
	// would re-traverse), each worker with its own traverser and marker
	// bitset, writing disjoint indices of the fresh arrays. The bitset
	// drain accumulates each neighborhood in ascending id order without
	// sorting it, reproducing the rebuild's summation order (the full
	// pass distributes node masses in ascending u, and by undirected
	// symmetry u ∈ S_h(w) ⇔ w ∈ S_h(u)), so float bits cannot drift.
	var cancelled atomic.Bool
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers > len(affected) {
		workers = len(affected)
	}
	if workers < 1 {
		workers = 1
	}
	chunk := (len(affected) + workers - 1) / workers
	const editPollEvery = 64
	for lo := 0; lo < len(affected); lo += chunk {
		hi := lo + chunk
		if hi > len(affected) {
			hi = len(affected)
		}
		wg.Add(1)
		go func(part []int) {
			defer wg.Done()
			t := graph.NewTraverser(newG)
			bs := ds.NewBitset(n)
			for i, w := range part {
				if i%editPollEvery == 0 && (cancelled.Load() || ctx.Err() != nil) {
					cancelled.Store(true)
					return
				}
				sums[w], counts[w], sizes[w] = t.SumCountWithinOrdered(w, v.h, scores, bs)
			}
		}(affected[lo:hi])
	}
	wg.Wait()
	if cancelled.Load() || ctx.Err() != nil {
		return EditResult{}, ctx.Err() // nothing swapped in; view unchanged
	}

	v.g, v.t = newG, graph.NewTraverser(newG)
	v.nix = &graph.NeighborhoodIndex{H: v.h, Size: sizes}
	v.scores, v.sums, v.counts = scores, sums, counts
	return EditResult{
		NodesAdded:   delta.NodesAdded,
		EdgesAdded:   delta.EdgesAdded,
		EdgesRemoved: delta.EdgesRemoved,
		Repaired:     len(affected),
	}, nil
}

// rebuildFrom is ApplyEdits' large-batch path: recompute the whole
// materialized state over the successor graph from scratch — the exact
// NewView/Rebuild distribution pass, so the resulting float bits match
// the incremental path's (which replays this pass's summation order
// node-locally). Like the incremental path, everything lands in fresh
// arrays swapped in only on success, so cancellation leaves the view at
// its pre-batch state.
func (v *View) rebuildFrom(ctx context.Context, newG *graph.Graph, delta *graph.EditDelta) (EditResult, error) {
	n := newG.NumNodes()
	scores := make([]float64, n)
	copy(scores, v.scores) // added nodes start at relevance 0
	sums := make([]float64, n)
	counts := make([]int32, n)
	if err := distributePass(ctx, newG, graph.NewTraverser(newG), scores, v.h, sums, counts); err != nil {
		return EditResult{}, err
	}
	nix := graph.BuildNeighborhoodIndex(newG, v.h, 0)
	if err := ctx.Err(); err != nil {
		return EditResult{}, err
	}

	v.g, v.t = newG, graph.NewTraverser(newG)
	v.nix = nix
	v.scores, v.sums, v.counts = scores, sums, counts
	return EditResult{
		NodesAdded:   delta.NodesAdded,
		EdgesAdded:   delta.EdgesAdded,
		EdgesRemoved: delta.EdgesRemoved,
		Repaired:     n,
		Rebuilt:      true,
	}, nil
}

// Run answers a top-k query from the materialized state — the same
// context-aware Query shape as Engine.Run, served by one linear heap scan
// with no traversal. Supported aggregates: Sum, Avg, Count. The Algorithm
// field is ignored (the view has exactly one way to answer) and Budget is
// moot: the scan performs no h-hop traversals, so nothing spends budget.
// Candidates restrict the scan; the context is polled periodically so even
// the O(n) scan of a huge network is abandonable.
//
// Run is a reader under the View's RWMutex discipline (see the type docs).
func (v *View) Run(ctx context.Context, q Query) (Answer, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if q.K <= 0 {
		return Answer{}, fmt.Errorf("core: k must be positive, got %d", q.K)
	}
	var value func(u int) float64
	switch q.Aggregate {
	case Sum:
		value = func(u int) float64 { return v.sums[u] }
	case Avg:
		value = func(u int) float64 { return v.sums[u] / float64(v.nix.N(u)) }
	case Count:
		value = func(u int) float64 { return float64(v.counts[u]) }
	default:
		return Answer{}, fmt.Errorf("core: View does not support %v (only SUM, AVG, COUNT)", q.Aggregate)
	}
	cand, err := candidateMask(v.g.NumNodes(), q.Candidates)
	if err != nil {
		return Answer{}, err
	}

	// Polling granularity: the per-node work here is a couple of loads,
	// so a coarser stride than the engine's per-traversal cadence still
	// cancels within microseconds.
	const viewPollEvery = 8192
	list := topk.New(q.K)
	for u := range v.sums {
		if u%viewPollEvery == 0 {
			if err := ctx.Err(); err != nil {
				return Answer{}, err
			}
		}
		if cand != nil && !cand[u] {
			continue
		}
		list.Offer(u, value(u))
	}
	return Answer{Results: list.Items()}, nil
}

// Rebuild recomputes the materialized state from scratch; used by tests to
// verify incremental maintenance never drifts (floating-point drift stays
// within normal summation tolerance).
func (v *View) Rebuild() {
	for i := range v.sums {
		v.sums[i] = 0
		v.counts[i] = 0
	}
	_ = distributePass(context.Background(), v.g, v.t, v.scores, v.h, v.sums, v.counts)
}
