package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/topk"
)

// View is a materialized neighborhood-aggregate view with incremental
// maintenance — the dynamic-network extension the paper's introduction
// motivates ("the intrusion packets could formulate a large, dynamic
// intrusion network") and its related work points at via materialized
// top-k views [Yi et al., ICDE 2003].
//
// The view materializes F_sum(u) for every node once (one backward
// distribution pass) and then maintains it under relevance updates: when
// f(v) changes by δ, exactly the nodes of S_h(v) change their aggregate,
// and by symmetry of undirected h-hop membership the view fixes them with
// a single BFS from v — O(|S_h(v)|) per update instead of a full
// recomputation. Top-k answers then cost one O(n) heap scan.
//
// Only SUM and AVG are maintainable this way (COUNT changes only on
// zero-crossings, which this view also handles; MAX is not decrementable
// without recount and is unsupported).
//
// # Concurrency contract
//
// A View is NOT internally synchronized. It is safe under the standard
// RWMutex discipline, which internal/server relies on and
// TestViewRWMutexDiscipline verifies under the race detector:
//
//   - Readers (Score, Sum, Run, TopK, ScoresCopy) may run concurrently
//     with each other: they only load from scores/sums/counts and never
//     touch the shared Traverser.
//   - Writers (UpdateScore, Rebuild) require exclusive access: they mutate
//     the materialized arrays and reuse the View's single Traverser.
//
// Concurrent readers with no writer are safe; any writer must exclude both
// readers and other writers.
type View struct {
	g      *graph.Graph
	h      int
	scores []float64 // owned copy; mutated by UpdateScore
	sums   []float64 // materialized F_sum
	counts []int32   // materialized positive-score counts (for COUNT)
	nix    *graph.NeighborhoodIndex
	t      *graph.Traverser
}

// NewView materializes the view. Cost: one full distribution pass, the
// same as BackwardNaive over a fully non-zero score vector.
func NewView(g *graph.Graph, scores []float64, h int) (*View, error) {
	if g.Directed() {
		return nil, fmt.Errorf("core: View requires an undirected graph")
	}
	e, err := NewEngine(g, scores, h)
	if err != nil {
		return nil, err
	}
	v := &View{
		g:      g,
		h:      h,
		scores: append([]float64(nil), scores...),
		sums:   make([]float64, g.NumNodes()),
		counts: make([]int32, g.NumNodes()),
		nix:    e.PrepareNeighborhoodIndex(0),
		t:      graph.NewTraverser(g),
	}
	for u := 0; u < g.NumNodes(); u++ {
		mass := scores[u]
		if mass == 0 {
			continue
		}
		v.t.VisitWithin(u, h, func(w, _ int) {
			v.sums[w] += mass
			v.counts[w]++
		})
	}
	return v, nil
}

// Score returns the current relevance of node u.
func (v *View) Score(u int) float64 { return v.scores[u] }

// ScoresCopy returns a snapshot copy of the current relevance vector —
// what a server hands to Engine.WithScores after an update batch.
func (v *View) ScoresCopy() []float64 { return append([]float64(nil), v.scores...) }

// Sum returns the materialized F_sum(u).
func (v *View) Sum(u int) float64 { return v.sums[u] }

// UpdateScore changes f(node) to newScore and repairs every affected
// aggregate with one h-hop BFS. It returns how many aggregates changed.
func (v *View) UpdateScore(node int, newScore float64) (touched int, err error) {
	if node < 0 || node >= v.g.NumNodes() {
		return 0, fmt.Errorf("core: node %d out of range [0,%d)", node, v.g.NumNodes())
	}
	if math.IsNaN(newScore) || newScore < 0 || newScore > 1 {
		return 0, fmt.Errorf("core: new score %v outside [0,1]", newScore)
	}
	old := v.scores[node]
	if old == newScore {
		return 0, nil
	}
	delta := newScore - old
	var countDelta int32
	if old == 0 && newScore > 0 {
		countDelta = 1
	}
	if old > 0 && newScore == 0 {
		countDelta = -1
	}
	v.scores[node] = newScore
	v.t.VisitWithin(node, v.h, func(w, _ int) {
		v.sums[w] += delta
		v.counts[w] += countDelta
		touched++
	})
	return touched, nil
}

// Run answers a top-k query from the materialized state — the same
// context-aware Query shape as Engine.Run, served by one linear heap scan
// with no traversal. Supported aggregates: Sum, Avg, Count. The Algorithm
// field is ignored (the view has exactly one way to answer) and Budget is
// moot: the scan performs no h-hop traversals, so nothing spends budget.
// Candidates restrict the scan; the context is polled periodically so even
// the O(n) scan of a huge network is abandonable.
//
// Run is a reader under the View's RWMutex discipline (see the type docs).
func (v *View) Run(ctx context.Context, q Query) (Answer, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if q.K <= 0 {
		return Answer{}, fmt.Errorf("core: k must be positive, got %d", q.K)
	}
	var value func(u int) float64
	switch q.Aggregate {
	case Sum:
		value = func(u int) float64 { return v.sums[u] }
	case Avg:
		value = func(u int) float64 { return v.sums[u] / float64(v.nix.N(u)) }
	case Count:
		value = func(u int) float64 { return float64(v.counts[u]) }
	default:
		return Answer{}, fmt.Errorf("core: View does not support %v (only SUM, AVG, COUNT)", q.Aggregate)
	}
	cand, err := candidateMask(v.g.NumNodes(), q.Candidates)
	if err != nil {
		return Answer{}, err
	}

	// Polling granularity: the per-node work here is a couple of loads,
	// so a coarser stride than the engine's per-traversal cadence still
	// cancels within microseconds.
	const viewPollEvery = 8192
	list := topk.New(q.K)
	for u := range v.sums {
		if u%viewPollEvery == 0 {
			if err := ctx.Err(); err != nil {
				return Answer{}, err
			}
		}
		if cand != nil && !cand[u] {
			continue
		}
		list.Offer(u, value(u))
	}
	return Answer{Results: list.Items()}, nil
}

// TopK answers a top-k query from the materialized state.
//
// Deprecated: use Run with a Query — the positional form cannot be
// cancelled or deadlined and cannot express candidates.
func (v *View) TopK(k int, agg Aggregate) ([]Result, error) {
	ans, err := v.Run(context.Background(), Query{K: k, Aggregate: agg})
	return ans.Results, err
}

// Rebuild recomputes the materialized state from scratch; used by tests to
// verify incremental maintenance never drifts (floating-point drift stays
// within normal summation tolerance).
func (v *View) Rebuild() {
	for i := range v.sums {
		v.sums[i] = 0
		v.counts[i] = 0
	}
	for u := 0; u < v.g.NumNodes(); u++ {
		mass := v.scores[u]
		if mass == 0 {
			continue
		}
		v.t.VisitWithin(u, v.h, func(w, _ int) {
			v.sums[w] += mass
			v.counts[w]++
		})
	}
}
