package core

import (
	"context"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/gen"
)

// streamTestScores builds a deterministic relevance vector with ties.
func streamTestScores(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = float64(rng.Intn(9)) / 8
	}
	return scores
}

// fixedFloor is a constant FloorProvider.
type fixedFloor float64

func (f fixedFloor) Floor() float64 { return float64(f) }

// atomicPool is a consuming BudgetSource over a fixed grant.
type atomicPool struct{ left atomic.Int64 }

func newAtomicPool(n int) *atomicPool {
	p := &atomicPool{}
	p.left.Store(int64(n))
	return p
}

func (p *atomicPool) TakeBudget(want int) int {
	for {
		cur := p.left.Load()
		if cur <= 0 {
			return 0
		}
		take := int64(want)
		if take > cur {
			take = cur
		}
		if p.left.CompareAndSwap(cur, cur-take) {
			return int(take)
		}
	}
}

// streamAlgos are the strategies exercised by the streaming contract
// tests, paired with the aggregates each supports.
func streamCases() []Query {
	var qs []Query
	for _, algo := range append([]Algorithm{AlgoAuto}, Algorithms...) {
		for _, agg := range []Aggregate{Sum, Avg, Count, Max} {
			if agg == Max && (algo == AlgoForward || algo == AlgoBackward || algo == AlgoForwardDist) {
				continue
			}
			qs = append(qs, Query{Algorithm: algo, K: 12, Aggregate: agg})
		}
	}
	return qs
}

// TestOnPartialStreamsEveryResult is the streaming contract every
// algorithm must uphold: by the time Run returns, every item of the
// final answer was emitted through OnPartial, no node was emitted twice,
// and the cumulative stats never regress between batches.
func TestOnPartialStreamsEveryResult(t *testing.T) {
	g := gen.BarabasiAlbert(700, 3, 9)
	scores := streamTestScores(700, 9)
	engine, err := NewEngine(g, scores, 2)
	if err != nil {
		t.Fatal(err)
	}
	engine.PrepareDifferentialIndex(0)

	for _, q := range streamCases() {
		label := q.Algorithm.String() + "/" + q.Aggregate.String()
		want, err := engine.Run(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}

		emitted := make(map[int]float64)
		var batches int
		var lastWork int
		sq := q
		sq.OnPartial = func(pr PartialResult) {
			batches++
			work := pr.Stats.Evaluated + pr.Stats.Distributed + pr.Stats.Visited
			if work < lastWork {
				t.Fatalf("%s: batch %d stats regressed (%d < %d)", label, batches, work, lastWork)
			}
			lastWork = work
			for _, it := range pr.Items {
				if prev, dup := emitted[it.Node]; dup {
					t.Fatalf("%s: node %d emitted twice (%v then %v)", label, it.Node, prev, it.Value)
				}
				emitted[it.Node] = it.Value
			}
		}
		got, err := engine.Run(context.Background(), sq)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Results) != len(want.Results) {
			t.Fatalf("%s: streaming changed the answer: %d results, want %d", label, len(got.Results), len(want.Results))
		}
		for i, r := range want.Results {
			if got.Results[i] != r {
				t.Fatalf("%s: streaming changed result %d: %+v, want %+v", label, i, got.Results[i], r)
			}
			v, ok := emitted[r.Node]
			if !ok {
				t.Fatalf("%s: final result node %d never emitted", label, r.Node)
			}
			if math.Float64bits(v) != math.Float64bits(r.Value) {
				t.Fatalf("%s: node %d emitted as %v, final value %v", label, r.Node, v, r.Value)
			}
		}
		if batches == 0 {
			t.Fatalf("%s: no batches emitted", label)
		}
	}
}

// TestFloorKeepsGlobalWinners: with the floor pinned at the true final
// k-th value — the tightest λ an admissible coordinator could ever push —
// every algorithm still returns the exact top-k, byte-identical, while
// the bound-driven strategies do strictly less evaluation work.
func TestFloorKeepsGlobalWinners(t *testing.T) {
	g := gen.BarabasiAlbert(900, 3, 17)
	scores := streamTestScores(900, 17)
	engine, err := NewEngine(g, scores, 2)
	if err != nil {
		t.Fatal(err)
	}
	engine.PrepareDifferentialIndex(0)

	for _, q := range streamCases() {
		label := q.Algorithm.String() + "/" + q.Aggregate.String()
		want, err := engine.Run(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if len(want.Results) < q.K {
			t.Fatalf("%s: reference run underfilled", label)
		}
		lambda := want.Results[q.K-1].Value

		fq := q
		fq.Floor = fixedFloor(lambda)
		got, err := engine.Run(context.Background(), fq)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Results) != len(want.Results) {
			t.Fatalf("%s: floored run returned %d results, want %d", label, len(got.Results), len(want.Results))
		}
		for i := range want.Results {
			if got.Results[i] != want.Results[i] {
				t.Fatalf("%s: floored result %d = %+v, want %+v", label, i, got.Results[i], want.Results[i])
			}
		}
		// The floor may only ever remove work, never add it.
		if got.Stats.Evaluated > want.Stats.Evaluated {
			t.Fatalf("%s: floored run evaluated %d > unfloored %d", label, got.Stats.Evaluated, want.Stats.Evaluated)
		}
	}

	// A floor well above the local k-th — the distributed case, where
	// other shards hold the strong nodes — must actually skip candidates:
	// with λ at the local maximum, only candidates whose distribution
	// bound reaches the maximum are evaluated at all, and the argmax
	// still survives (strict comparison).
	for _, algo := range []Algorithm{AlgoForwardDist, AlgoBackward} {
		q := Query{Algorithm: algo, K: 12, Aggregate: Sum}
		want, err := engine.Run(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		q.Floor = fixedFloor(want.Results[0].Value)
		got, err := engine.Run(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Results) == 0 || got.Results[0] != want.Results[0] {
			t.Fatalf("%v: max-floor run lost the argmax", algo)
		}
		if got.Stats.Evaluated >= want.Stats.Evaluated {
			t.Fatalf("%v: max floor cut nothing: evaluated %d vs %d", algo, got.Stats.Evaluated, want.Stats.Evaluated)
		}
	}
}

// TestFloorCeilingStopsScan: a floor above the engine-wide aggregate
// ceiling stops the index-free scans almost immediately — the
// within-shard analog of the coordinator cutting a whole shard.
func TestFloorCeilingStopsScan(t *testing.T) {
	g := gen.BarabasiAlbert(2000, 3, 23)
	scores := streamTestScores(2000, 23)
	engine, err := NewEngine(g, scores, 2)
	if err != nil {
		t.Fatal(err)
	}
	ceiling, err := engine.AggregateUpperBound(Sum, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{AlgoBase, AlgoBaseParallel, AlgoForward} {
		q := Query{Algorithm: algo, K: 10, Aggregate: Sum, Floor: fixedFloor(ceiling + 1)}
		ans, err := engine.Run(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		// The scan stops at the first poll stride per worker; allow a few.
		if ans.Stats.Evaluated > 16*ctxPollEvery {
			t.Fatalf("%v: ceiling cut left %d evaluations", algo, ans.Stats.Evaluated)
		}
	}
}

// TestBudgetTopUp: an exhausted budget draws from the ExtraBudget source
// traversal by traversal — the redistribution mechanics a coordinator
// uses to keep a budgeted sharded query doing the work it was asked.
func TestBudgetTopUp(t *testing.T) {
	g := gen.BarabasiAlbert(500, 3, 31)
	scores := streamTestScores(500, 31)
	engine, err := NewEngine(g, scores, 2)
	if err != nil {
		t.Fatal(err)
	}

	pool := newAtomicPool(120)
	q := Query{Algorithm: AlgoBase, K: 10, Aggregate: Sum, Budget: 80, ExtraBudget: pool}
	ans, err := engine.Run(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Truncated {
		t.Fatal("80+120 over 500 nodes did not truncate")
	}
	if ans.Stats.Evaluated != 200 {
		t.Fatalf("evaluated %d, want budget+pool = 200", ans.Stats.Evaluated)
	}
	if left := pool.left.Load(); left != 0 {
		t.Fatalf("pool left %d, want 0", left)
	}

	// A pool big enough to finish the scan: no truncation, exact answer,
	// and only the traversals actually needed are drawn.
	pool = newAtomicPool(10000)
	q.ExtraBudget = pool
	ans, err = engine.Run(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Truncated {
		t.Fatal("ample pool still truncated")
	}
	if ans.Stats.Evaluated != 500 {
		t.Fatalf("evaluated %d, want 500", ans.Stats.Evaluated)
	}
	if drawn := 10000 - pool.left.Load(); drawn != 500-80 {
		t.Fatalf("drew %d from pool, want %d", drawn, 500-80)
	}

	// The parallel scan shares one pool across workers without
	// over-drawing it.
	pool = newAtomicPool(120)
	pq := Query{Algorithm: AlgoBaseParallel, K: 10, Aggregate: Sum, Budget: 80,
		ExtraBudget: pool, Options: Options{Workers: 4}}
	pans, err := engine.Run(context.Background(), pq)
	if err != nil {
		t.Fatal(err)
	}
	if pans.Stats.Evaluated > 200 {
		t.Fatalf("parallel scan evaluated %d, over budget+pool 200", pans.Stats.Evaluated)
	}
}
