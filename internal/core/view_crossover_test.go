package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// crossoverBatch builds an edit batch wide enough that its affected
// closure crosses ApplyEdits' rebuild threshold: random edge flips
// between random endpoints spread over the whole id range.
func crossoverBatch(n int, seed int64) []graph.Edit {
	rng := rand.New(rand.NewSource(seed))
	var edits []graph.Edit
	for i := 0; i < 24; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			v = (v + 1) % n
		}
		edits = append(edits, graph.Edit{Op: graph.EditAddEdge, U: u, V: v})
	}
	return edits
}

// TestApplyEditsRebuildCrossover: past the repair/rebuild crossover
// (affected closure ≥ ⅚ of the graph now that repair's per-node sort is
// gone), ApplyEdits auto-falls back to the full rebuild —
// reporting Repaired == n — and the resulting materialized state is
// byte-identical to a view built fresh over the successor graph.
func TestApplyEditsRebuildCrossover(t *testing.T) {
	g := gen.BarabasiAlbert(400, 3, 5)
	n := g.NumNodes()
	scores := streamTestScores(n, 5)
	const h = 2

	edits := crossoverBatch(n, 7)
	newG, delta, err := g.ApplyEdits(edits)
	if err != nil {
		t.Fatal(err)
	}
	affected := graph.AffectedNodes(g, newG, delta, h)
	if 6*len(affected) < 5*n {
		t.Fatalf("test setup: affected %d of %d does not cross the rebuild threshold", len(affected), n)
	}

	v, err := NewView(g, scores, h)
	if err != nil {
		t.Fatal(err)
	}
	res, err := v.ApplyEdits(context.Background(), edits)
	if err != nil {
		t.Fatal(err)
	}
	if res.Repaired != newG.NumNodes() {
		t.Fatalf("Repaired = %d, want %d (the rebuild path)", res.Repaired, newG.NumNodes())
	}
	if res.EdgesAdded != delta.EdgesAdded || res.NodesAdded != delta.NodesAdded {
		t.Fatalf("result %+v does not match delta %+v", res, delta)
	}

	// Oracle: a view built from scratch over the successor graph. The
	// byte-identical guarantee must survive the crossover.
	oracle, err := NewView(newG, scores, h)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < newG.NumNodes(); u++ {
		if math.Float64bits(v.Sum(u)) != math.Float64bits(oracle.Sum(u)) {
			t.Fatalf("node %d: sum %v, oracle %v", u, v.Sum(u), oracle.Sum(u))
		}
		if v.counts[u] != oracle.counts[u] {
			t.Fatalf("node %d: count %d, oracle %d", u, v.counts[u], oracle.counts[u])
		}
		if v.NeighborhoodIndex().N(u) != oracle.NeighborhoodIndex().N(u) {
			t.Fatalf("node %d: N %d, oracle %d", u, v.NeighborhoodIndex().N(u), oracle.NeighborhoodIndex().N(u))
		}
	}
	for _, agg := range []Aggregate{Sum, Avg, Count} {
		got, err := v.Run(context.Background(), Query{K: 15, Aggregate: agg})
		if err != nil {
			t.Fatal(err)
		}
		want, err := oracle.Run(context.Background(), Query{K: 15, Aggregate: agg})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Results {
			if got.Results[i] != want.Results[i] {
				t.Fatalf("%v: result %d = %+v, oracle %+v", agg, i, got.Results[i], want.Results[i])
			}
		}
	}
}

// TestApplyEditsRebuildCancellation: a context cancelled mid-rebuild
// leaves the view at its pre-batch state, exactly like the incremental
// path's atomicity contract.
func TestApplyEditsRebuildCancellation(t *testing.T) {
	g := gen.BarabasiAlbert(400, 3, 5)
	n := g.NumNodes()
	scores := streamTestScores(n, 5)
	v, err := NewView(g, scores, 2)
	if err != nil {
		t.Fatal(err)
	}
	before, err := v.Run(context.Background(), Query{K: 10, Aggregate: Sum})
	if err != nil {
		t.Fatal(err)
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := v.ApplyEdits(cancelled, crossoverBatch(n, 7)); err == nil {
		t.Fatal("cancelled rebuild reported success")
	}
	if v.Graph() != g {
		t.Fatal("cancelled rebuild swapped the graph")
	}
	after, err := v.Run(context.Background(), Query{K: 10, Aggregate: Sum})
	if err != nil {
		t.Fatal(err)
	}
	for i := range before.Results {
		if before.Results[i] != after.Results[i] {
			t.Fatalf("cancelled rebuild perturbed the view: %+v vs %+v", after.Results[i], before.Results[i])
		}
	}
}
