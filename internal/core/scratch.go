package core

import "repro/internal/graph"

// queryScratch holds the dense per-query working arrays — candidate
// mask, pruning flags, backward accumulators, and the struct-of-arrays
// verification heap — so that steady-state queries perform no O(n)
// allocations. One scratch is checked out of the engine's pool per Run
// and returned when the query finishes; each algorithm clears exactly
// the arrays it uses (a memclr, the same work make() did before, minus
// the allocation and the garbage).
//
// The verification heap is struct-of-arrays on purpose: the heap's sift
// loop compares bounds only, and splitting nodes from bounds halves the
// bytes the comparisons pull through the cache.
type queryScratch struct {
	mask        []bool    // candidate membership
	pruned      []bool    // forward: pruned-by-bound flags
	processed   []bool    // forward: already-dequeued flags
	acc         []float64 // backward: accumulated mass P(v)
	scans       []int32   // backward: scan counts l(v)
	distributed []bool    // backward: did v distribute?
	heapNode    []int32   // backward: verification heap, nodes
	heapBound   []float64 // backward: verification heap, bounds
	trav        *graph.Traverser
}

// traverser returns the scratch's reusable BFS traverser for g (epoch
// marks plus the frontier queue — the last O(n) per-query allocation).
// Reuse is safe because every traversal Resets the epoch before walking,
// and a scratch pool belongs to one engine whose graph never changes;
// the identity check covers pools reached through WithScores clones.
func (s *queryScratch) traverser(g *graph.Graph) *graph.Traverser {
	if s.trav == nil || s.trav.Graph() != g {
		s.trav = graph.NewTraverser(g)
	}
	return s.trav
}

// scratch returns a queryScratch for this engine's node count.
func (e *Engine) scratch() *queryScratch {
	if s, ok := e.scratchPool.Get().(*queryScratch); ok {
		return s
	}
	return &queryScratch{}
}

// release returns s to the pool. Callers must not retain any view of its
// arrays past this call.
func (e *Engine) release(s *queryScratch) { e.scratchPool.Put(s) }

// clearedBools returns *buf resized to n and zeroed.
func clearedBools(buf *[]bool, n int) []bool {
	if cap(*buf) < n {
		*buf = make([]bool, n)
	} else {
		*buf = (*buf)[:n]
		clear(*buf)
	}
	return *buf
}

// clearedF64 returns *buf resized to n and zeroed.
func clearedF64(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	} else {
		*buf = (*buf)[:n]
		clear(*buf)
	}
	return *buf
}

// clearedI32 returns *buf resized to n and zeroed.
func clearedI32(buf *[]int32, n int) []int32 {
	if cap(*buf) < n {
		*buf = make([]int32, n)
	} else {
		*buf = (*buf)[:n]
		clear(*buf)
	}
	return *buf
}

// emptyI32 returns *buf with capacity >= n and length 0 (no clearing —
// heap storage is overwritten before use).
func emptyI32(buf *[]int32, n int) []int32 {
	if cap(*buf) < n {
		*buf = make([]int32, 0, n)
	}
	return (*buf)[:0]
}

// emptyF64 returns *buf with capacity >= n and length 0.
func emptyF64(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, 0, n)
	}
	return (*buf)[:0]
}
