package core

import (
	"runtime"
	"sync"

	"repro/internal/graph"
	"repro/internal/topk"
	"repro/internal/trace"
)

// runBase answers a top-k query by naive forward processing: every
// candidate's h-hop neighborhood is expanded and aggregated, and a size-k
// heap keeps the best. This is the paper's "Base" comparator in Figures
// 1–6; its cost is Θ(Σ_u work(S_h(u))) regardless of k or the score
// distribution.
func (e *Engine) runBase(x *exec) (Answer, error) {
	t := x.s.traverser(e.g)
	list := topk.New(x.q.K)
	var stats QueryStats
	for u := 0; u < e.g.NumNodes(); u++ {
		if !x.eligible(u) {
			continue
		}
		if err := x.tick(&stats); err != nil {
			return Answer{}, err
		}
		if x.ceilingCut() {
			// The external λ passed the certified ceiling over every
			// candidate: nothing left here can reach the global top-k.
			x.tr.Emit(trace.KindCut, 0, x.floorCache, "λ above scan ceiling")
			break
		}
		if !x.spend() {
			break
		}
		value, _, size := e.evaluate(t, u, x.q.Aggregate)
		stats.Evaluated++
		stats.Visited += size
		if list.Offer(u, value) {
			x.sink.kept(u, value, &stats)
		}
	}
	return Answer{Results: list.Items(), Stats: stats}, nil
}

// Base is runBase behind the positional convenience signature, with no
// cancellation, candidates, or budget.
func (e *Engine) Base(k int, agg Aggregate) ([]Result, QueryStats, error) {
	return e.positional(Query{Algorithm: AlgoBase, K: k, Aggregate: agg})
}

// runBaseParallel is Base with the node range fanned out across workers,
// each holding its own traverser and local heap; heaps merge at the end.
// Results are identical to Base (the top-k set is order-independent). It
// exists as an engineering baseline: the evaluation shows LONA's pruning
// beats even a parallel scan because pruning removes work instead of
// spreading it.
//
// Cancellation is per worker: each polls the shared context and bails,
// and the merge reports the context's error. A budget is allocated
// greedily over each worker's eligible nodes in range order, so a
// truncated parallel scan evaluates exactly the nodes the sequential scan
// would have — deterministic, and no budget is stranded on node ranges
// that hold few candidates.
func (e *Engine) runBaseParallel(x *exec) (Answer, error) {
	workers := x.q.Options.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := e.g.NumNodes()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return e.runBase(x)
	}
	x.tr.Emit(trace.KindPhase, workers, 0, "parallel scan fan-out")
	chunk := (n + workers - 1) / workers

	// Per-worker budget slices, waterfall-allocated against each range's
	// eligible-node count. A zero slice is a meter that is already
	// exhausted, not an unlimited one.
	var allocs []int
	if x.q.Budget > 0 {
		allocs = make([]int, workers)
		remaining := x.q.Budget
		for w := 0; w < workers && remaining > 0; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > n {
				hi = n
			}
			eligible := hi - lo
			if x.cand != nil {
				eligible = 0
				for u := lo; u < hi; u++ {
					if x.cand[u] {
						eligible++
					}
				}
			}
			take := eligible
			if take > remaining {
				take = remaining
			}
			allocs[w] = take
			remaining -= take
		}
	}
	meterFor := func(w int) meter {
		if allocs == nil {
			return meter{budget: -1}
		}
		// Workers share the query's top-up pool; TakeBudget is consuming,
		// so concurrent draws can never over-spend it.
		return meter{budget: allocs[w], extra: x.q.ExtraBudget}
	}

	type partial struct {
		items     []Result
		stats     QueryStats
		truncated bool
	}
	parts := make([]partial, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			m := meterFor(w)
			t := graph.NewTraverser(e.g)
			list := topk.New(x.q.K)
			var stats QueryStats
			for u := lo; u < hi; u++ {
				if x.cand != nil && !x.cand[u] {
					continue
				}
				// Each worker polls the shared external floor at its own
				// poll cadence; the ceiling cut applies to every range.
				if m.ticks%ctxPollEvery == 0 && x.hasCeiling && x.q.Floor != nil &&
					x.ceiling < x.q.Floor.Floor() {
					break
				}
				if err := m.step(x.ctx); err != nil {
					break // the merge re-reads ctx.Err and reports it
				}
				if !m.spend() {
					break
				}
				value, _, size := e.evaluate(t, u, x.q.Aggregate)
				stats.Evaluated++
				stats.Visited += size
				list.Offer(u, value)
			}
			parts[w] = partial{items: list.Items(), stats: stats, truncated: m.truncated}
		}(w, lo, hi)
	}
	wg.Wait()
	if err := x.ctx.Err(); err != nil {
		return Answer{}, err
	}

	merged := topk.New(x.q.K)
	var stats QueryStats
	truncated := false
	for _, p := range parts {
		for _, it := range p.items {
			merged.Offer(it.Node, it.Value)
		}
		stats.Evaluated += p.stats.Evaluated
		stats.Visited += p.stats.Visited
		truncated = truncated || p.truncated
	}
	// The parallel scan streams once, at merge time: per-worker lists are
	// not globally certified until merged, and a single end-of-run batch
	// still upholds the contract that every final result was emitted.
	if x.sink.active() {
		for _, it := range merged.Items() {
			x.sink.kept(it.Node, it.Value, &stats)
		}
	}
	return Answer{Results: merged.Items(), Stats: stats, Truncated: truncated}, nil
}

// BaseParallel is runBaseParallel behind the positional convenience
// signature, with no cancellation, candidates, or budget.
func (e *Engine) BaseParallel(k int, agg Aggregate, workers int) ([]Result, QueryStats, error) {
	return e.positional(Query{Algorithm: AlgoBaseParallel, K: k, Aggregate: agg, Options: Options{Workers: workers}})
}
