package core

import (
	"runtime"
	"sync"

	"repro/internal/graph"
	"repro/internal/topk"
)

// Base answers a top-k query by naive forward processing: every node's
// h-hop neighborhood is expanded and aggregated, and a size-k heap keeps
// the best. This is the paper's "Base" comparator in Figures 1–6; its cost
// is Θ(Σ_u work(S_h(u))) regardless of k or the score distribution.
func (e *Engine) Base(k int, agg Aggregate) ([]Result, QueryStats, error) {
	if err := e.checkQuery(k, agg, AlgoBase); err != nil {
		return nil, QueryStats{}, err
	}
	t := graph.NewTraverser(e.g)
	list := topk.New(k)
	var stats QueryStats
	for u := 0; u < e.g.NumNodes(); u++ {
		value, _, size := e.evaluate(t, u, agg)
		stats.Evaluated++
		stats.Visited += size
		list.Offer(u, value)
	}
	return list.Items(), stats, nil
}

// BaseParallel is Base with the node range fanned out across workers, each
// holding its own traverser and local heap; heaps merge at the end. Results
// are identical to Base (the top-k set is order-independent). It exists as
// an engineering baseline: the evaluation shows LONA's pruning beats even a
// parallel scan because pruning removes work instead of spreading it.
func (e *Engine) BaseParallel(k int, agg Aggregate, workers int) ([]Result, QueryStats, error) {
	if err := e.checkQuery(k, agg, AlgoBaseParallel); err != nil {
		return nil, QueryStats{}, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := e.g.NumNodes()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return e.Base(k, agg)
	}

	type partial struct {
		items []Result
		stats QueryStats
	}
	parts := make([]partial, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			t := graph.NewTraverser(e.g)
			list := topk.New(k)
			var stats QueryStats
			for u := lo; u < hi; u++ {
				value, _, size := e.evaluate(t, u, agg)
				stats.Evaluated++
				stats.Visited += size
				list.Offer(u, value)
			}
			parts[w] = partial{items: list.Items(), stats: stats}
		}(w, lo, hi)
	}
	wg.Wait()

	merged := topk.New(k)
	var stats QueryStats
	for _, p := range parts {
		for _, it := range p.items {
			merged.Offer(it.Node, it.Value)
		}
		stats.Evaluated += p.stats.Evaluated
		stats.Visited += p.stats.Visited
	}
	return merged.Items(), stats, nil
}
