package core

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestForwardDistAgreesWithBase(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		seed := int64(900 + trial)
		n := 30 + trial*9
		g := randomGraph(n, 3*n, seed)
		scores := randomScores(n, seed)
		e := mustEngine(t, g, scores, 2)
		for _, agg := range []Aggregate{Sum, Avg, WeightedSum, Count} {
			for _, k := range []int{1, 5, n} {
				want, _, err := e.Base(k, agg)
				if err != nil {
					t.Fatal(err)
				}
				got, _, err := e.ForwardDist(k, agg)
				if err != nil {
					t.Fatal(err)
				}
				if !sameResults(got, want) {
					t.Fatalf("trial %d %v k=%d: ForwardDist %v != Base %v", trial, agg, k, got, want)
				}
			}
		}
	}
}

func TestDistributionBoundAdmissible(t *testing.T) {
	property := func(seed int64) bool {
		n := 20 + int(seed%13+13)%13
		g := randomGraph(n, 3*n, seed)
		scores := randomScores(n, seed+1)
		e, err := NewEngine(g, scores, 2)
		if err != nil {
			return false
		}
		for _, agg := range []Aggregate{Sum, Avg, Count} {
			for v := 0; v < n; v++ {
				if e.DistributionBound(v, agg) < exactValue(e, v, agg)-1e-9 {
					t.Logf("seed=%d %v node %d: dist bound %v < exact %v",
						seed, agg, v, e.DistributionBound(v, agg), exactValue(e, v, agg))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestForwardDistEarlyTermination(t *testing.T) {
	// The distribution bound top(N(v)) bites when neighborhood sizes are
	// skewed: five disjoint stars mean every leaf has N=2 and bound
	// 2·maxScore, far below any hub's aggregate — the N-descending scan
	// must stop right after the hubs.
	const hubs, leavesPerHub = 5, 120
	n := hubs * (leavesPerHub + 1)
	b := graph.NewBuilder(n, false)
	for hub := 0; hub < hubs; hub++ {
		base := hub * (leavesPerHub + 1)
		for leaf := 1; leaf <= leavesPerHub; leaf++ {
			b.AddEdge(base, base+leaf)
		}
	}
	g := b.Build()
	scores := make([]float64, n)
	for v := range scores {
		scores[v] = 0.5
	}
	e := mustEngine(t, g, scores, 1)
	_, stats, err := e.ForwardDist(hubs, Sum)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Evaluated > hubs+1 {
		t.Fatalf("ForwardDist evaluated %d nodes, want <= %d (hubs plus one probe)", stats.Evaluated, hubs+1)
	}
	if stats.Evaluated+stats.Pruned != n {
		t.Fatalf("evaluated+pruned = %d, want %d", stats.Evaluated+stats.Pruned, n)
	}
}

func TestPlannerPicksBackwardNaiveForSparse(t *testing.T) {
	g := randomGraph(200, 600, 41)
	scores := make([]float64, 200)
	scores[3] = 1
	scores[77] = 1
	e := mustEngine(t, g, scores, 2)
	plan := NewPlanner(e).Choose(10, Sum)
	if plan.Algorithm != AlgoBackwardNaive {
		t.Fatalf("sparse scores chose %v (%s)", plan.Algorithm, plan.Reason)
	}
}

func TestPlannerPicksBaseForMax(t *testing.T) {
	g := randomGraph(50, 150, 43)
	e := mustEngine(t, g, randomScores(50, 43), 2)
	plan := NewPlanner(e).Choose(5, Max)
	if plan.Algorithm != AlgoBase {
		t.Fatalf("MAX chose %v", plan.Algorithm)
	}
}

func TestPlannerDirectedGraph(t *testing.T) {
	b := graph.NewBuilder(20, true)
	rng := rand.New(rand.NewSource(47))
	for i := 0; i < 50; i++ {
		u, v := rng.Intn(20), rng.Intn(20)
		if u != v {
			b.AddEdge(u, v)
		}
	}
	g := b.Build()
	e := mustEngine(t, g, randomScores(20, 47), 2)
	plan := NewPlanner(e).Choose(5, Sum)
	if plan.Algorithm != AlgoBase {
		t.Fatalf("directed graph without index chose %v", plan.Algorithm)
	}
	e.PrepareDifferentialIndex(1)
	plan = NewPlanner(e).Choose(5, Sum)
	if plan.Algorithm != AlgoForward {
		t.Fatalf("directed graph with index chose %v", plan.Algorithm)
	}
}

func TestPlannerMixtureChoosesBackward(t *testing.T) {
	// Dense-but-light scores (most nodes small, few heavy) without an
	// index: partial distribution should win the plan.
	g := randomGraph(300, 900, 53)
	rng := rand.New(rand.NewSource(53))
	scores := make([]float64, 300)
	for v := range scores {
		scores[v] = rng.Float64() * 0.3 // dense, light
	}
	scores[7] = 1
	e := mustEngine(t, g, scores, 2)
	plan := NewPlanner(e).Choose(10, Sum)
	if plan.Algorithm != AlgoBackward {
		t.Fatalf("light-mass scores chose %v (%s)", plan.Algorithm, plan.Reason)
	}
	if plan.Options.Gamma <= 0 || plan.Options.Gamma > 1 {
		t.Fatalf("planner gamma %v out of range", plan.Options.Gamma)
	}
}

func TestPlannerTopKExecutes(t *testing.T) {
	g := randomGraph(80, 240, 59)
	scores := randomScores(80, 59)
	e := mustEngine(t, g, scores, 2)
	want, _, err := e.Base(7, Sum)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := NewPlanner(e).Run(context.Background(), Query{K: 7, Aggregate: Sum})
	if err != nil {
		t.Fatalf("plan %v: %v", ans.Plan, err)
	}
	if !sameResults(ans.Results, want) {
		t.Fatalf("planned execution (%v) disagreed with Base", ans.Plan.Algorithm)
	}
	if ans.Plan == nil || ans.Plan.Reason == "" {
		t.Fatal("plan has no rationale")
	}
}

func TestPlannerEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(0, false).Build()
	e := mustEngine(t, g, nil, 2)
	plan := NewPlanner(e).Choose(1, Sum)
	if plan.Algorithm != AlgoBase {
		t.Fatalf("empty graph chose %v", plan.Algorithm)
	}
}
