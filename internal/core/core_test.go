package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// randomGraph builds a small random undirected graph for cross-checking.
func randomGraph(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n, false)
	for i := 0; i < m; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// randomScores returns a relevance vector mixing zeros, ones, and
// fractional values — exercising all pruning regimes.
func randomScores(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	scores := make([]float64, n)
	for v := range scores {
		switch rng.Intn(4) {
		case 0:
			scores[v] = 0
		case 1:
			scores[v] = 1
		default:
			scores[v] = rng.Float64()
		}
	}
	return scores
}

// topK adapts the Query/Run API to the positional shape the cross-checking
// tests were written against.
func topK(e *Engine, algo Algorithm, k int, agg Aggregate, opts *Options) ([]Result, QueryStats, error) {
	q := Query{Algorithm: algo, K: k, Aggregate: agg}
	if opts != nil {
		q.Options = *opts
	}
	return e.positional(q)
}

func mustEngine(t *testing.T, g *graph.Graph, scores []float64, h int) *Engine {
	t.Helper()
	e, err := NewEngine(g, scores, h)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return e
}

// approxEq tolerates last-ulp differences from summation order: the same
// mathematical aggregate computed by BFS order (Base) and by distribution
// order (Backward) can differ by a few ulps.
func approxEq(a, b float64) bool {
	diff := math.Abs(a - b)
	scale := math.Abs(a)
	if math.Abs(b) > scale {
		scale = math.Abs(b)
	}
	return diff <= 1e-9*(1+scale)
}

// sameResults compares two top-k answers. Values must agree pairwise
// (within FP tolerance). Node lists must agree except where values tie
// with the k-th value: FP jitter can legally permute which of several
// equal-valued nodes sits on the boundary.
func sameResults(a, b []Result) bool {
	if len(a) != len(b) {
		return false
	}
	if len(a) == 0 {
		return true
	}
	for i := range a {
		if !approxEq(a[i].Value, b[i].Value) {
			return false
		}
	}
	kth := a[len(a)-1].Value
	inA := make(map[int]struct{}, len(a))
	inB := make(map[int]struct{}, len(b))
	for i := range a {
		inA[a[i].Node] = struct{}{}
		inB[b[i].Node] = struct{}{}
	}
	for _, r := range a {
		if _, ok := inB[r.Node]; !ok && !approxEq(r.Value, kth) {
			return false
		}
	}
	for _, r := range b {
		if _, ok := inA[r.Node]; !ok && !approxEq(r.Value, kth) {
			return false
		}
	}
	return true
}

func TestNewEngineValidation(t *testing.T) {
	g := randomGraph(5, 8, 1)
	if _, err := NewEngine(nil, nil, 1); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := NewEngine(g, make([]float64, 3), 1); err == nil {
		t.Fatal("wrong score length accepted")
	}
	if _, err := NewEngine(g, make([]float64, 5), -1); err == nil {
		t.Fatal("negative h accepted")
	}
	bad := make([]float64, 5)
	bad[2] = 1.5
	if _, err := NewEngine(g, bad, 1); err == nil {
		t.Fatal("score > 1 accepted")
	}
	bad[2] = math.NaN()
	if _, err := NewEngine(g, bad, 1); err == nil {
		t.Fatal("NaN score accepted")
	}
	bad[2] = -0.1
	if _, err := NewEngine(g, bad, 1); err == nil {
		t.Fatal("negative score accepted")
	}
	if _, err := NewEngine(g, make([]float64, 5), 2); err != nil {
		t.Fatalf("valid engine rejected: %v", err)
	}
}

func TestQueryValidation(t *testing.T) {
	g := randomGraph(6, 10, 2)
	e := mustEngine(t, g, randomScores(6, 2), 1)
	if _, _, err := e.Base(0, Sum); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, _, err := e.Base(-3, Sum); err == nil {
		t.Fatal("negative k accepted")
	}
	if _, _, err := e.Forward(2, Max, OrderNatural); err == nil {
		t.Fatal("Forward accepted MAX")
	}
	if _, _, err := e.Backward(2, Max, 0); err == nil {
		t.Fatal("Backward accepted MAX")
	}
	if _, _, err := e.Backward(2, Sum, -0.5); err == nil {
		t.Fatal("negative gamma accepted")
	}
	if _, _, err := e.Backward(2, Sum, 1.5); err == nil {
		t.Fatal("gamma > 1 accepted")
	}
}

func TestBackwardRejectsDirectedGraphs(t *testing.T) {
	b := graph.NewBuilder(4, true)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	e := mustEngine(t, g, []float64{1, 1, 1, 0}, 1)
	if _, _, err := e.BackwardNaive(2, Sum); err == nil {
		t.Fatal("BackwardNaive accepted a directed graph")
	}
	if _, _, err := e.Backward(2, Sum, 0); err == nil {
		t.Fatal("Backward accepted a directed graph")
	}
	// Forward processing is direction-agnostic and must still work.
	if _, _, err := e.Base(2, Sum); err != nil {
		t.Fatalf("Base on directed graph: %v", err)
	}
	if _, _, err := e.Forward(2, Sum, OrderNatural); err != nil {
		t.Fatalf("Forward on directed graph: %v", err)
	}
}

func TestBaseOnHandCheckedStar(t *testing.T) {
	// Star: hub 0 with leaves 1..4. h=1.
	b := graph.NewBuilder(5, false)
	for i := 1; i < 5; i++ {
		b.AddEdge(0, i)
	}
	g := b.Build()
	scores := []float64{0.5, 1, 0, 0.25, 0.25}
	e := mustEngine(t, g, scores, 1)

	results, stats, err := e.Base(2, Sum)
	if err != nil {
		t.Fatal(err)
	}
	// F(0) = 0.5+1+0+0.25+0.25 = 2.0; F(1) = 1+0.5 = 1.5;
	// F(3)=F(4)=0.75; F(2)=0.5.
	if results[0].Node != 0 || math.Abs(results[0].Value-2.0) > 1e-12 {
		t.Fatalf("top = %+v, want node 0 value 2.0", results[0])
	}
	if results[1].Node != 1 || math.Abs(results[1].Value-1.5) > 1e-12 {
		t.Fatalf("second = %+v, want node 1 value 1.5", results[1])
	}
	if stats.Evaluated != 5 {
		t.Fatalf("Evaluated = %d, want 5", stats.Evaluated)
	}

	avg, _, err := e.Base(1, Avg)
	if err != nil {
		t.Fatal(err)
	}
	// AVG: hub 2.0/5 = 0.4; node 1: 1.5/2 = 0.75 → winner node 1.
	if avg[0].Node != 1 || math.Abs(avg[0].Value-0.75) > 1e-12 {
		t.Fatalf("AVG top = %+v, want node 1 value 0.75", avg[0])
	}
}

// TestAllAlgorithmsAgree is the central correctness test: every algorithm
// must return the identical (node, value) list on randomized inputs, for
// every supported aggregate, hop radius, and k.
func TestAllAlgorithmsAgree(t *testing.T) {
	aggs := []Aggregate{Sum, Avg, WeightedSum, Count}
	for trial := 0; trial < 12; trial++ {
		seed := int64(100 + trial)
		n := 20 + trial*7
		g := randomGraph(n, 3*n, seed)
		scores := randomScores(n, seed)
		for _, h := range []int{1, 2, 3} {
			e := mustEngine(t, g, scores, h)
			for _, agg := range aggs {
				for _, k := range []int{1, 3, n / 2, n + 5} {
					want, _, err := e.Base(k, agg)
					if err != nil {
						t.Fatal(err)
					}
					for _, algo := range []Algorithm{AlgoBaseParallel, AlgoForward, AlgoForwardDist, AlgoBackwardNaive, AlgoBackward} {
						got, _, err := topK(e, algo, k, agg, &Options{Gamma: 0.3, Workers: 4})
						if err != nil {
							t.Fatalf("trial %d h=%d %v k=%d %v: %v", trial, h, agg, k, algo, err)
						}
						if !sameResults(got, want) {
							t.Fatalf("trial %d h=%d %v k=%d: %v disagrees with Base\n got %v\nwant %v",
								trial, h, agg, k, algo, got, want)
						}
					}
				}
			}
		}
	}
}

// TestAlgorithmsAgreeOnBinaryScores covers the sparse 0/1 regime where
// BackwardNaive's zero-skipping and LONA-Backward's exact bounds kick in,
// and where value ties are pervasive (stress for deterministic ordering).
func TestAlgorithmsAgreeOnBinaryScores(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		seed := int64(500 + trial)
		n := 40 + trial*11
		g := randomGraph(n, 2*n, seed)
		rng := rand.New(rand.NewSource(seed))
		scores := make([]float64, n)
		for v := range scores {
			if rng.Float64() < 0.1 {
				scores[v] = 1
			}
		}
		e := mustEngine(t, g, scores, 2)
		for _, agg := range []Aggregate{Sum, Avg, Count} {
			want, _, err := e.Base(5, agg)
			if err != nil {
				t.Fatal(err)
			}
			for _, algo := range []Algorithm{AlgoForward, AlgoBackwardNaive, AlgoBackward} {
				got, _, err := topK(e, algo, 5, agg, &Options{Gamma: 0.5})
				if err != nil {
					t.Fatal(err)
				}
				if !sameResults(got, want) {
					t.Fatalf("trial %d %v %v: got %v want %v", trial, agg, algo, got, want)
				}
			}
		}
	}
}

func TestAgreementAcrossGammas(t *testing.T) {
	g := randomGraph(60, 180, 9)
	scores := randomScores(60, 9)
	e := mustEngine(t, g, scores, 2)
	want, _, err := e.Base(7, Sum)
	if err != nil {
		t.Fatal(err)
	}
	for _, gamma := range []float64{0, 0.1, 0.25, 0.5, 0.9, 1} {
		got, _, err := e.Backward(7, Sum, gamma)
		if err != nil {
			t.Fatalf("gamma=%v: %v", gamma, err)
		}
		if !sameResults(got, want) {
			t.Fatalf("gamma=%v: got %v want %v", gamma, got, want)
		}
	}
}

func TestAgreementAcrossQueueOrders(t *testing.T) {
	g := randomGraph(50, 150, 17)
	scores := randomScores(50, 17)
	e := mustEngine(t, g, scores, 2)
	want, _, err := e.Base(6, Avg)
	if err != nil {
		t.Fatal(err)
	}
	for _, order := range []QueueOrder{OrderNatural, OrderDegreeDesc, OrderScoreDesc} {
		got, _, err := e.Forward(6, Avg, order)
		if err != nil {
			t.Fatalf("order=%v: %v", order, err)
		}
		if !sameResults(got, want) {
			t.Fatalf("order=%v: got %v want %v", order, got, want)
		}
	}
}

func TestMaxAggregateBaseVsBackwardNaive(t *testing.T) {
	g := randomGraph(30, 90, 21)
	scores := randomScores(30, 21)
	e := mustEngine(t, g, scores, 2)
	want, _, err := e.Base(4, Max)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := e.BackwardNaive(4, Max)
	if err != nil {
		t.Fatal(err)
	}
	if !sameResults(got, want) {
		t.Fatalf("MAX: BackwardNaive %v != Base %v", got, want)
	}
}

func TestKLargerThanGraph(t *testing.T) {
	g := randomGraph(10, 20, 23)
	scores := randomScores(10, 23)
	e := mustEngine(t, g, scores, 2)
	for _, algo := range []Algorithm{AlgoBase, AlgoForward, AlgoBackwardNaive, AlgoBackward} {
		results, _, err := topK(e, algo, 50, Sum, nil)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if len(results) != 10 {
			t.Fatalf("%v returned %d results, want all 10 nodes", algo, len(results))
		}
	}
}

func TestAllZeroScores(t *testing.T) {
	g := randomGraph(15, 30, 29)
	e := mustEngine(t, g, make([]float64, 15), 2)
	for _, algo := range []Algorithm{AlgoBase, AlgoForward, AlgoBackwardNaive, AlgoBackward} {
		results, _, err := topK(e, algo, 3, Sum, nil)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if len(results) != 3 {
			t.Fatalf("%v returned %d results", algo, len(results))
		}
		for _, r := range results {
			if r.Value != 0 {
				t.Fatalf("%v returned non-zero value on all-zero scores: %+v", algo, r)
			}
		}
	}
}

func TestZeroHopRadius(t *testing.T) {
	// h=0: F(u) = f(u); top-k is just the highest-scored nodes.
	g := randomGraph(12, 24, 31)
	scores := randomScores(12, 31)
	e := mustEngine(t, g, scores, 0)
	want, _, err := e.Base(3, Sum)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range want {
		if math.Abs(r.Value-scores[r.Node]) > 1e-12 {
			t.Fatalf("h=0 result %d = %+v, want value f(node)", i, r)
		}
	}
	got, _, err := e.Backward(3, Sum, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !sameResults(got, want) {
		t.Fatalf("h=0: Backward %v != Base %v", got, want)
	}
}

func TestDisconnectedGraph(t *testing.T) {
	// Two components; aggregates must never leak across.
	b := graph.NewBuilder(6, false)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	g := b.Build()
	scores := []float64{1, 1, 1, 0, 0, 0}
	e := mustEngine(t, g, scores, 2)
	results, _, err := e.Base(6, Sum)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Node >= 3 && r.Value != 0 {
			t.Fatalf("component leak: node %d has value %v", r.Node, r.Value)
		}
		if r.Node < 3 && r.Value != 3 {
			t.Fatalf("node %d value %v, want 3 (whole component within 2 hops)", r.Node, r.Value)
		}
	}
}

func TestStatsAreReported(t *testing.T) {
	g := randomGraph(100, 300, 37)
	scores := randomScores(100, 37)
	e := mustEngine(t, g, scores, 2)

	_, base, err := e.Base(5, Sum)
	if err != nil {
		t.Fatal(err)
	}
	if base.Evaluated != 100 || base.Visited == 0 {
		t.Fatalf("Base stats = %+v", base)
	}

	_, fwd, err := e.Forward(5, Sum, OrderDegreeDesc)
	if err != nil {
		t.Fatal(err)
	}
	if fwd.Evaluated+fwd.Pruned > 100 {
		t.Fatalf("Forward stats account for more nodes than exist: %+v", fwd)
	}
	if fwd.Evaluated == 0 {
		t.Fatalf("Forward evaluated nothing: %+v", fwd)
	}

	_, bwd, err := e.Backward(5, Sum, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if bwd.Distributed == 0 {
		t.Fatalf("Backward distributed nothing: %+v", bwd)
	}
}

func TestTopKDispatchUnknownAlgorithm(t *testing.T) {
	g := randomGraph(5, 8, 41)
	e := mustEngine(t, g, make([]float64, 5), 1)
	if _, _, err := topK(e, Algorithm(99), 1, Sum, nil); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestStringers(t *testing.T) {
	cases := map[string]string{
		Sum.String():            "SUM",
		Avg.String():            "AVG",
		WeightedSum.String():    "WSUM",
		Count.String():          "COUNT",
		Max.String():            "MAX",
		AlgoBase.String():       "Base",
		AlgoForward.String():    "Forward",
		AlgoBackward.String():   "Backward",
		OrderNatural.String():   "natural",
		OrderScoreDesc.String(): "score-desc",
	}
	for got, want := range cases {
		if got != want {
			t.Fatalf("String() = %q, want %q", got, want)
		}
	}
	if Aggregate(200).String() == "" || Algorithm(200).String() == "" || QueueOrder(200).String() == "" {
		t.Fatal("unknown enum values must still print")
	}
}

// TestWithScoresSharesIndexes verifies a rebuilt engine reuses the
// topology-only indexes and answers correctly for the new scores.
func TestWithScoresSharesIndexes(t *testing.T) {
	g := randomGraph(80, 240, 23)
	e := mustEngine(t, g, randomScores(80, 23), 2)
	nix := e.PrepareNeighborhoodIndex(0)
	dix := e.PrepareDifferentialIndex(0)

	newScores := randomScores(80, 24)
	ne, err := e.WithScores(newScores)
	if err != nil {
		t.Fatal(err)
	}
	if ne.PrepareNeighborhoodIndex(0) != nix || ne.PrepareDifferentialIndex(0) != dix {
		t.Fatal("WithScores rebuilt the topology-only indexes instead of sharing them")
	}
	want, _, err := ne.Base(10, Sum)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{AlgoForward, AlgoBackward, AlgoBackwardNaive, AlgoForwardDist} {
		got, _, err := topK(ne, algo, 10, Sum, &Options{Gamma: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		if !sameResults(got, want) {
			t.Fatalf("%v on rebuilt engine disagrees with Base", algo)
		}
	}
	if _, err := e.WithScores([]float64{0.5}); err == nil {
		t.Fatal("WithScores accepted a wrong-length score vector")
	}
}
