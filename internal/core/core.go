// Package core implements the paper's contribution: the LONA (Local
// Neighborhood Aggregation) framework for top-k neighborhood aggregation
// queries over large networks.
//
// Given a graph G, a relevance function f : V -> [0,1], and a hop radius h,
// a query asks for the k nodes u maximizing an aggregate F(u) over the
// h-hop neighborhood S_h(u) (which includes u itself; see DESIGN.md §1 for
// the convention). Four algorithms answer it:
//
//   - Base          — naive forward processing: BFS + aggregate per node.
//   - Forward       — Algorithm 1: forward processing with differential-
//     index pruning (Equations 1 and 2).
//   - BackwardNaive — Algorithm 2: score distribution from non-zero nodes.
//   - Backward      — LONA-Backward: partial distribution above a
//     threshold γ, Equation 3 upper bounds, then bound-ordered
//     verification with early termination.
//
// All four return identical (node, value) result lists; the extensive
// cross-checking tests in this package rely on that.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/graph"
	"repro/internal/topk"
)

// Aggregate selects the neighborhood aggregation function F (problem P2).
type Aggregate uint8

const (
	// Sum is F(u) = Σ_{v ∈ S_h(u)} f(v).
	Sum Aggregate = iota
	// Avg is F(u) = Sum(u) / N(u).
	Avg
	// WeightedSum is footnote 1's variant: Σ f(v)·w(u,v) with
	// w(u,v) = 1/shortest-distance(u,v) and w(u,u) = 1.
	WeightedSum
	// Count is the number of relevant (score > 0) nodes in S_h(u).
	Count
	// Max is the largest relevance in S_h(u). Only Base and BackwardNaive
	// support it; the paper's bounds do not transfer to Max.
	Max
)

// String returns the aggregate's conventional name.
func (a Aggregate) String() string {
	switch a {
	case Sum:
		return "SUM"
	case Avg:
		return "AVG"
	case WeightedSum:
		return "WSUM"
	case Count:
		return "COUNT"
	case Max:
		return "MAX"
	default:
		return fmt.Sprintf("Aggregate(%d)", uint8(a))
	}
}

// Algorithm identifies one of the query strategies; the bench harness
// sweeps over these.
type Algorithm uint8

const (
	// AlgoAuto — the zero value, so a zero Query plans itself — delegates
	// the choice of strategy to the cost-based Planner; the Answer then
	// carries the Plan it picked.
	AlgoAuto Algorithm = iota
	// AlgoBase is naive forward processing (the paper's "Base").
	AlgoBase
	// AlgoBaseParallel is Base fanned out over worker goroutines; an
	// engineering baseline showing pruning wins even against parallelism.
	AlgoBaseParallel
	// AlgoForward is LONA-Forward (Algorithm 1).
	AlgoForward
	// AlgoBackwardNaive is Algorithm 2's full backward distribution.
	AlgoBackwardNaive
	// AlgoBackward is LONA-Backward (partial distribution + Eq. 3).
	AlgoBackward
	// AlgoForwardDist is forward processing pruned by the index-free
	// distribution bound top(N(v)) — the paper's "given the distribution
	// of attribute values, it is possible to estimate the upper-bound
	// value of aggregates" property as a standalone technique.
	AlgoForwardDist
)

// String returns the algorithm's name as used in the paper's figures.
func (a Algorithm) String() string {
	switch a {
	case AlgoAuto:
		return "Auto"
	case AlgoBase:
		return "Base"
	case AlgoBaseParallel:
		return "Base-Parallel"
	case AlgoForward:
		return "Forward"
	case AlgoBackwardNaive:
		return "Backward-Naive"
	case AlgoBackward:
		return "Backward"
	case AlgoForwardDist:
		return "Forward-Dist"
	default:
		return fmt.Sprintf("Algorithm(%d)", uint8(a))
	}
}

// Algorithms lists every executable strategy (AlgoAuto, a planner
// delegation rather than a strategy, is excluded), in bench display order.
var Algorithms = []Algorithm{AlgoBase, AlgoBaseParallel, AlgoForward, AlgoForwardDist, AlgoBackwardNaive, AlgoBackward}

// Result is one entry of a top-k answer.
type Result = topk.Item

// QueryStats reports what a query execution did — the quantities the
// paper's pruning techniques are designed to shrink.
// The JSON names are the serving API's wire format (internal/server).
type QueryStats struct {
	Evaluated   int `json:"evaluated"`   // nodes whose neighborhood was exactly aggregated
	Pruned      int `json:"pruned"`      // nodes skipped by a pruning bound
	Distributed int `json:"distributed"` // nodes that backward-distributed their score
	Visited     int `json:"visited"`     // total neighborhood memberships touched (BFS work)
}

// Options tunes a query beyond (algorithm, k, aggregate).
type Options struct {
	// Gamma is LONA-Backward's distribution threshold γ: only nodes with
	// bound-score >= Gamma distribute. Zero distributes every non-zero
	// node (the tightest, most expensive choice).
	Gamma float64
	// Order chooses LONA-Forward's processing queue order.
	Order QueueOrder
	// Workers bounds parallelism for AlgoBaseParallel (<=0 = GOMAXPROCS).
	Workers int
}

// QueueOrder selects how LONA-Forward's node queue is ordered. The paper's
// Algorithm 1 does not fix an order; the ablation benchmark A4 compares
// these.
type QueueOrder uint8

const (
	// OrderNatural processes nodes in id order.
	OrderNatural QueueOrder = iota
	// OrderDegreeDesc processes high-degree nodes first: they tend to have
	// large aggregates, raising the pruning bound early.
	OrderDegreeDesc
	// OrderScoreDesc processes high-relevance nodes first.
	OrderScoreDesc
)

// String names the order for bench output.
func (o QueueOrder) String() string {
	switch o {
	case OrderNatural:
		return "natural"
	case OrderDegreeDesc:
		return "degree-desc"
	case OrderScoreDesc:
		return "score-desc"
	default:
		return fmt.Sprintf("QueueOrder(%d)", uint8(o))
	}
}

// Engine answers top-k neighborhood aggregation queries over one
// (graph, relevance, h) triple. Indexes are built lazily and cached;
// Prepare* methods build them eagerly so benchmarks can separate index
// construction from query time, matching the paper's treatment of the
// differential index as precomputed.
//
// An Engine is safe for concurrent queries; the first query to need an
// index builds it under ixMu while racing queries wait for the result.
type Engine struct {
	g      *graph.Graph
	scores []float64
	h      int

	// ixMu guards the lazy builds of the topology-only indexes, so
	// concurrent first queries (or a long-lived server skipping eager
	// preparation) are safe.
	ixMu sync.Mutex
	nix  *graph.NeighborhoodIndex
	dix  *graph.DifferentialIndex

	// Lazily built, immutable once published (scores and topology never
	// change): processing queues per order and descending non-zero score
	// lists for backward distribution. Guarded by mu so concurrent
	// queries may trigger the first build safely.
	mu           sync.Mutex
	queues       map[QueueOrder][]int32
	nonZeroSum   []scoredNode // boundScore under SUM-family, descending
	nonZeroCount []scoredNode // boundScore under COUNT, descending
	prefixSum    []float64    // distributionPrefix under SUM-family
	prefixCount  []float64    // distributionPrefix under COUNT
	distOrder    []int32      // nodes in descending N(v), for ForwardDist
	plans        map[planKey]Plan

	// scratchPool recycles the dense per-query working arrays (see
	// queryScratch); sync.Pool is internally synchronized, so concurrent
	// queries each check out their own scratch.
	scratchPool sync.Pool
}

// planKey caches planner decisions per aggregate and index presence — the
// only inputs to Choose that are not frozen at engine construction
// (HasDifferentialIndex flips false→true at most once).
type planKey struct {
	agg    Aggregate
	hasDix bool
}

// scoredNode pairs a node with its bound-score for distribution ordering.
type scoredNode struct {
	node  int32
	score float64
}

// NewEngine validates the inputs and returns an Engine. scores must have
// one entry per node, each within [0,1] (Definition 1); h must be
// non-negative.
func NewEngine(g *graph.Graph, scores []float64, h int) (*Engine, error) {
	if g == nil {
		return nil, errors.New("core: nil graph")
	}
	if h < 0 {
		return nil, fmt.Errorf("core: negative hop radius %d", h)
	}
	if len(scores) != g.NumNodes() {
		return nil, fmt.Errorf("core: %d scores for %d nodes", len(scores), g.NumNodes())
	}
	for v, s := range scores {
		if math.IsNaN(s) || s < 0 || s > 1 {
			return nil, fmt.Errorf("core: node %d has relevance %v outside [0,1]", v, s)
		}
	}
	return &Engine{g: g, scores: scores, h: h}, nil
}

// Graph returns the engine's graph.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Scores returns the engine's relevance vector (shared; do not modify).
func (e *Engine) Scores() []float64 { return e.scores }

// H returns the hop radius.
func (e *Engine) H() int { return e.h }

// WithScores returns a new Engine over the same (graph, h) pair with a
// different relevance vector. The topology-only indexes (neighborhood and
// differential) are shared with the receiver — they depend only on (G, h),
// so a long-lived server can refresh its scores without paying index
// construction again. Score-dependent caches (processing queues, non-zero
// distribution lists) are rebuilt lazily by the new engine.
func (e *Engine) WithScores(scores []float64) (*Engine, error) {
	ne, err := NewEngine(e.g, scores, e.h)
	if err != nil {
		return nil, err
	}
	e.ixMu.Lock()
	ne.nix = e.nix
	ne.dix = e.dix
	e.ixMu.Unlock()
	return ne, nil
}

// HasDifferentialIndex reports whether the differential index is already
// built, without building it — what the planner's "is the index free?"
// heuristic asks.
func (e *Engine) HasDifferentialIndex() bool {
	e.ixMu.Lock()
	defer e.ixMu.Unlock()
	return e.dix != nil
}

// PrepareNeighborhoodIndex builds (or returns) the N(v) index.
func (e *Engine) PrepareNeighborhoodIndex(workers int) *graph.NeighborhoodIndex {
	e.ixMu.Lock()
	defer e.ixMu.Unlock()
	if e.nix == nil {
		e.nix = graph.BuildNeighborhoodIndex(e.g, e.h, workers)
	}
	return e.nix
}

// AdoptNeighborhoodIndex installs a prebuilt N(v) index — typically one
// incrementally repaired after a structural edit batch
// (graph.NeighborhoodIndex.Repair) — so a successor engine over the
// edited graph does not re-pay the full index build. The index must match
// the engine's hop radius and node count; the engine takes the pointer
// as-is (indexes are immutable by convention), so callers must hand over
// an index they will not mutate.
//
// The differential index is deliberately NOT adoptable across edits: its
// entries parallel arc positions, which any structural edit shifts. A
// post-edit engine starts without one and rebuilds it lazily if Forward
// is explicitly requested; until then the planner avoids Forward, the
// same contract as a server started with SkipIndexes.
func (e *Engine) AdoptNeighborhoodIndex(nix *graph.NeighborhoodIndex) error {
	if nix == nil {
		return errors.New("core: nil neighborhood index")
	}
	if nix.H != e.h {
		return fmt.Errorf("core: adopting index built for h=%d into engine with h=%d", nix.H, e.h)
	}
	if len(nix.Size) != e.g.NumNodes() {
		return fmt.Errorf("core: adopting index over %d nodes into engine over %d", len(nix.Size), e.g.NumNodes())
	}
	e.ixMu.Lock()
	e.nix = nix
	e.ixMu.Unlock()
	return nil
}

// PrepareDifferentialIndex builds (or returns) the per-edge differential
// index used by LONA-Forward.
func (e *Engine) PrepareDifferentialIndex(workers int) *graph.DifferentialIndex {
	e.ixMu.Lock()
	defer e.ixMu.Unlock()
	if e.dix == nil {
		e.dix = graph.BuildDifferentialIndex(e.g, e.h, workers)
	}
	return e.dix
}

// positional adapts Run to the positional methods' return shape with an
// uncancellable context.
func (e *Engine) positional(q Query) ([]Result, QueryStats, error) {
	ans, err := e.Run(context.Background(), q)
	return ans.Results, ans.Stats, err
}

// checkQuery validates common parameters and aggregate support.
func (e *Engine) checkQuery(k int, agg Aggregate, algo Algorithm) error {
	if k <= 0 {
		return fmt.Errorf("core: k must be positive, got %d", k)
	}
	switch agg {
	case Sum, Avg, WeightedSum, Count:
		// supported everywhere
	case Max:
		if algo == AlgoForward || algo == AlgoBackward || algo == AlgoForwardDist {
			return fmt.Errorf("core: %v does not support MAX (no transferable bound)", algo)
		}
	default:
		return fmt.Errorf("core: unknown aggregate %v", agg)
	}
	if algo == AlgoBackward || algo == AlgoBackwardNaive {
		if e.g.Directed() {
			return fmt.Errorf("core: %v requires an undirected graph (distribution relies on v ∈ S_h(u) ⇔ u ∈ S_h(v))", algo)
		}
	}
	return nil
}

// boundScore returns the per-node mass the pruning bounds reason about:
// the relevance itself for SUM-family aggregates, the 0/1 relevance
// indicator for COUNT. Both satisfy 0 <= mass <= 1, which Equations 1 and
// 3 require.
func (e *Engine) boundScore(v int, agg Aggregate) float64 {
	if agg == Count {
		if e.scores[v] > 0 {
			return 1
		}
		return 0
	}
	return e.scores[v]
}

// evaluate exactly computes u's aggregate with the given traverser.
// It returns the reported value, the SUM-domain quantity pruning bounds
// compare against (see boundScore), and N(u).
func (e *Engine) evaluate(t *graph.Traverser, u int, agg Aggregate) (value, boundSum float64, size int) {
	switch agg {
	case Sum:
		sum, n := t.SumWithin(u, e.h, e.scores)
		return sum, sum, n
	case Avg:
		sum, n := t.SumWithin(u, e.h, e.scores)
		return sum / float64(n), sum, n
	case WeightedSum:
		// One BFS computes both the weighted value and the plain sum the
		// bounds need (weighted <= plain because every weight <= 1).
		wsum, sum, n := t.WeightedPlainSumWithin(u, e.h, e.scores)
		return wsum, sum, n
	case Count:
		count, n := t.CountPositiveWithin(u, e.h, e.scores)
		return float64(count), float64(count), n
	case Max:
		max, n := t.MaxWithin(u, e.h, e.scores)
		return max, max, n
	default:
		panic(fmt.Sprintf("core: evaluate on unknown aggregate %v", agg))
	}
}

// finishValue converts a SUM-domain upper bound into the aggregate's value
// domain for comparison against the top-k threshold (Equation 2 for AVG).
func finishValue(agg Aggregate, boundSum float64, n int) float64 {
	if agg == Avg {
		return boundSum / float64(n)
	}
	return boundSum
}

// queueFor returns the cached node processing order for LONA-Forward.
// Orders depend only on immutable engine state, so they are built once.
func (e *Engine) queueFor(order QueueOrder) []int32 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.queues == nil {
		e.queues = make(map[QueueOrder][]int32)
	}
	if q, ok := e.queues[order]; ok {
		return q
	}
	q := e.makeQueue(order)
	e.queues[order] = q
	return q
}

func (e *Engine) makeQueue(order QueueOrder) []int32 {
	n := e.g.NumNodes()
	queue := make([]int32, n)
	switch order {
	case OrderDegreeDesc:
		// Counting sort: descending degree, ascending id within a degree —
		// deterministic and O(n + maxDegree), cheap even on million-node
		// graphs.
		maxDeg := e.g.MaxDegree()
		counts := make([]int32, maxDeg+2)
		for u := 0; u < n; u++ {
			counts[maxDeg-e.g.Degree(u)+1]++
		}
		for d := 1; d < len(counts); d++ {
			counts[d] += counts[d-1]
		}
		for u := 0; u < n; u++ {
			slot := maxDeg - e.g.Degree(u)
			queue[counts[slot]] = int32(u)
			counts[slot]++
		}
	case OrderScoreDesc:
		for i := range queue {
			queue[i] = int32(i)
		}
		sort.SliceStable(queue, func(i, j int) bool {
			return e.scores[queue[i]] > e.scores[queue[j]]
		})
	default: // OrderNatural
		for i := range queue {
			queue[i] = int32(i)
		}
	}
	return queue
}

// nonZeroFor returns the nodes with positive bound-score under agg, sorted
// by descending score (ascending id among ties). Built once per score
// semantics and shared by every backward query.
func (e *Engine) nonZeroFor(agg Aggregate) []scoredNode {
	e.mu.Lock()
	defer e.mu.Unlock()
	cache := &e.nonZeroSum
	if agg == Count {
		cache = &e.nonZeroCount
	}
	if *cache != nil {
		return *cache
	}
	n := e.g.NumNodes()
	list := make([]scoredNode, 0, n/4)
	for v := 0; v < n; v++ {
		if s := e.boundScore(v, agg); s > 0 {
			list = append(list, scoredNode{int32(v), s})
		}
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].score != list[j].score {
			return list[i].score > list[j].score
		}
		return list[i].node < list[j].node
	})
	if len(list) == 0 {
		list = []scoredNode{} // non-nil sentinel so the cache hits
	}
	*cache = list
	return list
}
