package core

import (
	"context"
	"fmt"
)

// Query is the first-class description of a top-k neighborhood aggregation
// request — the single shape every execution surface (Engine, Planner,
// View, and the serving API) accepts. Describing a query as a value rather
// than a positional call is what lets one entry point carry cancellation,
// candidate restriction, and an early-termination budget uniformly, the
// way adaptive distributed top-k systems treat queries as described
// objects with a budget rather than ad-hoc calls.
//
// The zero Algorithm is AlgoAuto: the cost-based planner chooses the
// strategy, and the resulting Answer carries the Plan it picked.
type Query struct {
	// Algorithm selects the strategy; AlgoAuto (the zero value) delegates
	// the choice to the planner.
	Algorithm Algorithm
	// K is the number of results to return.
	K int
	// Aggregate selects the neighborhood aggregation function.
	Aggregate Aggregate
	// Options tunes the chosen algorithm (γ, queue order, workers). With
	// AlgoAuto the planner supplies these; only a caller-set Workers value
	// is preserved.
	Options Options
	// Candidates optionally restricts which nodes may appear in the
	// result. Scores of non-candidate nodes still contribute to their
	// neighbors' aggregates — the restriction is on who is ranked, not on
	// who counts. An empty slice means every node is a candidate.
	Candidates []int
	// Budget caps the number of h-hop traversals (exact evaluations plus
	// backward distributions) the query may perform; 0 means unlimited.
	// When the budget runs out the query stops early and returns the best
	// answer found so far with Answer.Truncated set — Fagin-style early
	// termination for latency-bound serving.
	Budget int
}

// Answer bundles everything one query execution produced.
type Answer struct {
	// Results is the top-k list, best first.
	Results []Result
	// Stats reports the work the execution performed.
	Stats QueryStats
	// Plan is the planner's decision when AlgoAuto chose the strategy;
	// nil when the caller named an algorithm explicitly.
	Plan *Plan
	// Truncated reports that Budget stopped the query before it could
	// certify the exact answer; Results are best-effort.
	Truncated bool
}

// Run executes a query, the single entry point behind every query surface.
// It is safe for concurrent use. The context is honored cooperatively: the
// algorithm loops poll ctx.Err() every few iterations, so a cancelled or
// deadlined query returns the context's error promptly (without a partial
// answer) and leaves the engine fully reusable.
func (e *Engine) Run(ctx context.Context, q Query) (Answer, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var plan *Plan
	if q.Algorithm == AlgoAuto {
		p := e.planFor(q.K, q.Aggregate)
		workers := q.Options.Workers
		q.Algorithm, q.Options = p.Algorithm, p.Options
		if q.Options.Workers <= 0 {
			q.Options.Workers = workers
		}
		plan = &p
	}
	if err := e.checkQuery(q.K, q.Aggregate, q.Algorithm); err != nil {
		return Answer{}, err
	}
	if q.Budget < 0 {
		return Answer{}, fmt.Errorf("core: negative budget %d", q.Budget)
	}
	cand, err := candidateMask(e.g.NumNodes(), q.Candidates)
	if err != nil {
		return Answer{}, err
	}
	if err := ctx.Err(); err != nil {
		return Answer{}, err
	}

	x := &exec{ctx: ctx, q: &q, cand: cand, meter: newMeter(q.Budget)}
	var ans Answer
	switch q.Algorithm {
	case AlgoBase:
		ans, err = e.runBase(x)
	case AlgoBaseParallel:
		ans, err = e.runBaseParallel(x)
	case AlgoForward:
		ans, err = e.runForward(x)
	case AlgoBackwardNaive:
		ans, err = e.runBackwardNaive(x)
	case AlgoBackward:
		ans, err = e.runBackward(x)
	case AlgoForwardDist:
		ans, err = e.runForwardDist(x)
	default:
		return Answer{}, fmt.Errorf("core: unknown algorithm %v", q.Algorithm)
	}
	if err != nil {
		return Answer{}, err
	}
	ans.Plan = plan
	ans.Truncated = ans.Truncated || x.truncated
	return ans, nil
}

// exec carries the per-execution state the algorithm loops share: the
// query, the candidate mask, and the cancellation/budget meter.
type exec struct {
	ctx  context.Context
	q    *Query
	cand []bool // nil = every node is eligible
	meter
}

// eligible reports whether node v may appear in the result.
func (x *exec) eligible(v int) bool { return x.cand == nil || x.cand[v] }

// planFor returns the planner's decision for agg, memoized on the engine:
// the choice reads only immutable engine state plus index presence, so
// repeated AlgoAuto queries must not re-pay Choose's O(n) statistics scan
// (and gammaKnee's sort) every call. k is not part of the key — Choose's
// heuristics ignore it.
func (e *Engine) planFor(k int, agg Aggregate) Plan {
	key := planKey{agg: agg, hasDix: e.HasDifferentialIndex()}
	e.mu.Lock()
	if p, ok := e.plans[key]; ok {
		e.mu.Unlock()
		return p
	}
	e.mu.Unlock()

	p := NewPlanner(e).Choose(k, agg)

	e.mu.Lock()
	if e.plans == nil {
		e.plans = make(map[planKey]Plan)
	}
	e.plans[key] = p
	e.mu.Unlock()
	return p
}

// candidateMask validates candidate ids against an n-node graph and
// returns their membership mask, or nil when the query ranks every node.
// Shared by Engine.Run and View.Run so candidate semantics cannot diverge.
func candidateMask(n int, candidates []int) ([]bool, error) {
	if len(candidates) == 0 {
		return nil, nil
	}
	mask := make([]bool, n)
	for _, v := range candidates {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("core: candidate node %d out of range [0,%d)", v, n)
		}
		mask[v] = true
	}
	return mask, nil
}

// ctxPollEvery is how many outer-loop iterations (each at most one h-hop
// traversal) pass between context polls. Small enough that cancellation
// lands within a handful of BFS expansions, large enough that the atomic
// load inside ctx.Err never shows up in a profile.
const ctxPollEvery = 64

// meter enforces a query's cooperative-cancellation and budget contract.
// Each h-hop traversal calls step once (context poll) and spend once
// (budget accounting).
type meter struct {
	ticks     int
	budget    int // remaining traversals; <0 = unlimited
	truncated bool
}

func newMeter(budget int) meter {
	if budget <= 0 {
		budget = -1
	}
	return meter{budget: budget}
}

// step polls the context every ctxPollEvery calls; the first call always
// polls so an already-cancelled context returns before any work.
func (m *meter) step(ctx context.Context) error {
	if m.ticks%ctxPollEvery == 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	m.ticks++
	return nil
}

// spend consumes one traversal of budget, reporting false — and marking
// the execution truncated — once the budget is exhausted.
func (m *meter) spend() bool {
	if m.budget < 0 {
		return true
	}
	if m.budget == 0 {
		m.truncated = true
		return false
	}
	m.budget--
	return true
}
