package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/topk"
	"repro/internal/trace"
)

// Query is the first-class description of a top-k neighborhood aggregation
// request — the single shape every execution surface (Engine, Planner,
// View, and the serving API) accepts. Describing a query as a value rather
// than a positional call is what lets one entry point carry cancellation,
// candidate restriction, and an early-termination budget uniformly, the
// way adaptive distributed top-k systems treat queries as described
// objects with a budget rather than ad-hoc calls.
//
// The zero Algorithm is AlgoAuto: the cost-based planner chooses the
// strategy, and the resulting Answer carries the Plan it picked.
type Query struct {
	// Algorithm selects the strategy; AlgoAuto (the zero value) delegates
	// the choice to the planner.
	Algorithm Algorithm
	// K is the number of results to return.
	K int
	// Aggregate selects the neighborhood aggregation function.
	Aggregate Aggregate
	// Options tunes the chosen algorithm (γ, queue order, workers). With
	// AlgoAuto the planner supplies these; only a caller-set Workers value
	// is preserved.
	Options Options
	// Candidates optionally restricts which nodes may appear in the
	// result. Scores of non-candidate nodes still contribute to their
	// neighbors' aggregates — the restriction is on who is ranked, not on
	// who counts. An empty slice means every node is a candidate.
	Candidates []int
	// Budget caps the number of h-hop traversals (exact evaluations plus
	// backward distributions) the query may perform; 0 means unlimited.
	// When the budget runs out the query stops early and returns the best
	// answer found so far with Answer.Truncated set — Fagin-style early
	// termination for latency-bound serving.
	Budget int
	// OnPartial, when set, streams incremental progress: batches of newly
	// certified results plus cumulative stats (see PartialResult). It is
	// invoked synchronously from the executing goroutine, every
	// PartialEvery certified results and at the context-poll points, and
	// must not call back into the engine. Wire and cache layers ignore it.
	OnPartial func(PartialResult)
	// PartialEvery caps how many certified results buffer between
	// OnPartial emissions (0 = one batch per context-poll stride).
	PartialEvery int
	// Floor, when set, supplies an external monotone threshold λ (a
	// certified lower bound on the final global k-th value — see
	// FloorProvider). The algorithms skip candidates whose upper bound
	// falls strictly below it, so a distributed merge can cut work inside
	// a running shard query. Local results may then hold fewer than K
	// items; the skipped candidates provably cannot appear in the global
	// top-K the floor describes.
	Floor FloorProvider
	// Ceiling optionally supplies a caller-certified upper bound on every
	// candidate's aggregate, used with Floor for the whole-scan cut. Zero
	// means unknown: Run then computes one itself (AggregateUpperBound) —
	// callers that already hold a memoized bound (cluster shards) pass it
	// here to keep the O(n) recomputation off every streamed query.
	Ceiling float64
	// ExtraBudget, when set alongside a positive Budget, is drawn from
	// when the budget runs out — the redistribution pool a coordinator
	// fills with the slices of shards it cut early. Ignored when Budget
	// is zero (an unlimited query has nothing to top up).
	ExtraBudget BudgetSource
	// Tracer, when set, records the execution's timeline (plan choice,
	// floor observations, partial emissions, cuts) into a per-query trace.
	// Every recorder method is nil-safe, so the zero value pays nothing.
	// The HTTP wire layer carries only the trace id; caches never store
	// traced answers.
	Tracer *trace.Recorder
}

// Answer bundles everything one query execution produced.
type Answer struct {
	// Results is the top-k list, best first.
	Results []Result
	// Stats reports the work the execution performed.
	Stats QueryStats
	// Plan is the planner's decision when AlgoAuto chose the strategy;
	// nil when the caller named an algorithm explicitly.
	Plan *Plan
	// Truncated reports that Budget stopped the query before it could
	// certify the exact answer; Results are best-effort.
	Truncated bool
}

// Run executes a query, the single entry point behind every query surface.
// It is safe for concurrent use. The context is honored cooperatively: the
// algorithm loops poll ctx.Err() every few iterations, so a cancelled or
// deadlined query returns the context's error promptly (without a partial
// answer) and leaves the engine fully reusable.
func (e *Engine) Run(ctx context.Context, q Query) (Answer, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var plan *Plan
	if q.Algorithm == AlgoAuto {
		p := e.planFor(q.K, q.Aggregate)
		workers := q.Options.Workers
		q.Algorithm, q.Options = p.Algorithm, p.Options
		if q.Options.Workers <= 0 {
			q.Options.Workers = workers
		}
		plan = &p
	}
	if err := e.checkQuery(q.K, q.Aggregate, q.Algorithm); err != nil {
		return Answer{}, err
	}
	if q.Budget < 0 {
		return Answer{}, fmt.Errorf("core: negative budget %d", q.Budget)
	}
	s := e.scratch()
	defer e.release(s)
	cand, candCount, err := candidateMaskPooled(s, e.g.NumNodes(), q.Candidates)
	if err != nil {
		return Answer{}, err
	}
	if err := ctx.Err(); err != nil {
		return Answer{}, err
	}

	x := &exec{ctx: ctx, q: &q, cand: cand, candCount: candCount, s: s,
		meter: newMeter(q.Budget, q.ExtraBudget), sink: newPartialSink(&q), tr: q.Tracer}
	var execStart time.Time
	if x.tr != nil {
		if plan != nil {
			x.tr.Emit(trace.KindPlan, 0, 0, plan.Algorithm.String()+": "+plan.Reason)
		}
		execStart = time.Now()
	}
	if q.Floor != nil {
		// The whole-scan cut the forward-processing algorithms use: once
		// the external λ exceeds a certified ceiling over every candidate
		// this engine could rank, no remaining evaluation can matter. The
		// ceiling is static per execution (scores are immutable): the
		// caller's, or computed once up front.
		ceiling := q.Ceiling
		if ceiling <= 0 {
			var err error
			if ceiling, err = e.AggregateUpperBound(q.Aggregate, q.Candidates); err != nil {
				return Answer{}, err
			}
		}
		x.ceiling, x.hasCeiling = ceiling, true
	}
	var ans Answer
	switch q.Algorithm {
	case AlgoBase:
		ans, err = e.runBase(x)
	case AlgoBaseParallel:
		ans, err = e.runBaseParallel(x)
	case AlgoForward:
		ans, err = e.runForward(x)
	case AlgoBackwardNaive:
		ans, err = e.runBackwardNaive(x)
	case AlgoBackward:
		ans, err = e.runBackward(x)
	case AlgoForwardDist:
		ans, err = e.runForwardDist(x)
	default:
		return Answer{}, fmt.Errorf("core: unknown algorithm %v", q.Algorithm)
	}
	if err != nil {
		return Answer{}, err
	}
	ans.Plan = plan
	ans.Truncated = ans.Truncated || x.truncated
	// Ship whatever certified results are still buffered: a streaming
	// consumer must have seen every item of ans.Results by the time Run
	// returns.
	x.sink.finish(&ans.Stats)
	if x.tr != nil {
		if ans.Truncated {
			x.tr.Emit(trace.KindTruncated, 0, 0, "budget exhausted")
		}
		x.tr.Span(trace.KindExec, execStart, ans.Stats.Evaluated, 0, q.Algorithm.String())
	}
	return ans, nil
}

// exec carries the per-execution state the algorithm loops share: the
// query, the candidate mask, the cancellation/budget meter, the partial
// emission sink, and the external-floor bookkeeping.
type exec struct {
	ctx       context.Context
	q         *Query
	cand      []bool // nil = every node is eligible
	candCount int    // eligible-node count (n when cand is nil)
	s         *queryScratch
	meter
	sink partialSink

	// ceiling is a certified upper bound over every candidate's aggregate,
	// computed once when an external floor is attached; hasCeiling guards
	// the zero value. floorCache holds the last polled λ.
	ceiling    float64
	hasCeiling bool
	floorCache float64

	// tr records the execution timeline; nil (the common case) makes every
	// recording site a single branch.
	tr *trace.Recorder
}

// eligible reports whether node v may appear in the result.
func (x *exec) eligible(v int) bool { return x.cand == nil || x.cand[v] }

// floor returns the last polled external threshold λ (0 when none is
// attached — vacuous, since aggregates are non-negative and every floor
// comparison is strict).
func (x *exec) floor() float64 { return x.floorCache }

// pollFloor refreshes the cached λ; called at the context-poll cadence so
// the atomic-load-through-interface cost stays off the innermost loops.
func (x *exec) pollFloor() {
	if x.q.Floor != nil {
		if f := x.q.Floor.Floor(); f > x.floorCache {
			x.floorCache = f
			x.tr.Emit(trace.KindFloor, 0, f, "")
		}
	}
}

// threshold returns the pruning threshold the bound-driven algorithms
// compare candidate upper bounds against (strictly): the larger of the
// local topklbound and the external floor λ. Zero means both bounds are
// still vacuous and nothing may be pruned.
func (x *exec) threshold(list *topk.List) float64 {
	t := x.floorCache
	if list.Full() && list.Bound() > t {
		t = list.Bound()
	}
	return t
}

// ceilingCut reports whether the external λ has risen strictly above the
// execution-wide ceiling — no candidate this engine could rank can reach
// the global top-k anymore, so a forward scan may stop outright.
func (x *exec) ceilingCut() bool {
	return x.hasCeiling && x.ceiling < x.floorCache
}

// tick runs the shared per-traversal cadence work: at every poll stride it
// refreshes the external floor and flushes a partial batch (so downstream
// λ consumers never lag more than one stride), then polls the context.
func (x *exec) tick(stats *QueryStats) error {
	if x.ticks%ctxPollEvery == 0 {
		x.pollFloor()
		if x.ticks > 0 {
			x.sink.tick(stats)
		}
	}
	return x.step(x.ctx)
}

// planFor returns the planner's decision for agg, memoized on the engine:
// the choice reads only immutable engine state plus index presence, so
// repeated AlgoAuto queries must not re-pay Choose's O(n) statistics scan
// (and gammaKnee's sort) every call. k is not part of the key — Choose's
// heuristics ignore it.
func (e *Engine) planFor(k int, agg Aggregate) Plan {
	key := planKey{agg: agg, hasDix: e.HasDifferentialIndex()}
	e.mu.Lock()
	if p, ok := e.plans[key]; ok {
		e.mu.Unlock()
		return p
	}
	e.mu.Unlock()

	p := NewPlanner(e).Choose(k, agg)

	e.mu.Lock()
	if e.plans == nil {
		e.plans = make(map[planKey]Plan)
	}
	e.plans[key] = p
	e.mu.Unlock()
	return p
}

// candidateMask validates candidate ids against an n-node graph and
// returns their membership mask, or nil when the query ranks every node.
// View.Run uses this allocating form so candidate semantics cannot
// diverge from Engine.Run's pooled one below.
func candidateMask(n int, candidates []int) ([]bool, error) {
	if len(candidates) == 0 {
		return nil, nil
	}
	mask := make([]bool, n)
	for _, v := range candidates {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("core: candidate node %d out of range [0,%d)", v, n)
		}
		mask[v] = true
	}
	return mask, nil
}

// candidateMaskPooled is candidateMask writing into the query scratch
// instead of allocating, additionally returning the distinct-candidate
// count (n when the query ranks every node) so algorithms that need the
// eligible population (ForwardDist's early-stop accounting) do not
// rescan the mask.
func candidateMaskPooled(s *queryScratch, n int, candidates []int) (mask []bool, count int, err error) {
	if len(candidates) == 0 {
		return nil, n, nil
	}
	mask = clearedBools(&s.mask, n)
	for _, v := range candidates {
		if v < 0 || v >= n {
			return nil, 0, fmt.Errorf("core: candidate node %d out of range [0,%d)", v, n)
		}
		if !mask[v] {
			mask[v] = true
			count++
		}
	}
	return mask, count, nil
}

// ctxPollEvery is how many outer-loop iterations (each at most one h-hop
// traversal) pass between context polls. Small enough that cancellation
// lands within a handful of BFS expansions, large enough that the atomic
// load inside ctx.Err never shows up in a profile.
const ctxPollEvery = 64

// meter enforces a query's cooperative-cancellation and budget contract.
// Each h-hop traversal calls step once (context poll) and spend once
// (budget accounting). When an ExtraBudget source is attached, an
// exhausted budget draws replacement traversals from it one at a time —
// demand-exact, so a shared redistribution pool is never over-drawn.
type meter struct {
	ticks     int
	budget    int // remaining traversals; <0 = unlimited
	truncated bool
	extra     BudgetSource // optional top-up pool; nil = none
}

func newMeter(budget int, extra BudgetSource) meter {
	if budget <= 0 {
		return meter{budget: -1}
	}
	return meter{budget: budget, extra: extra}
}

// step polls the context every ctxPollEvery calls; the first call always
// polls so an already-cancelled context returns before any work.
func (m *meter) step(ctx context.Context) error {
	if m.ticks%ctxPollEvery == 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	m.ticks++
	return nil
}

// spend consumes one traversal of budget, reporting false — and marking
// the execution truncated — once the budget (and any top-up source) is
// exhausted.
func (m *meter) spend() bool {
	if m.budget < 0 {
		return true
	}
	if m.budget == 0 {
		if m.extra != nil {
			m.budget = m.extra.TakeBudget(1)
		}
		if m.budget == 0 {
			m.truncated = true
			return false
		}
	}
	m.budget--
	return true
}
