package core

import "repro/internal/trace"

// This file is the engine half of streaming distributed execution: the
// progress sink a query can attach (Query.OnPartial) and the external
// threshold it can consume (Query.Floor), plus the mid-query budget
// top-up hook (Query.ExtraBudget). Together they let a coordinator apply
// the Threshold Algorithm's stopping rule *inside* a running shard query
// [Fagin et al.]: workers stream partial top-k batches upward, the
// coordinator folds them into its global heap, and the tightened k-th
// value λ flows back down so the algorithms skip candidates that can no
// longer matter — the network-traffic-bounding pattern of Akbarinia et
// al.'s distributed top-k work.

// PartialResult is one progress emission of a running query.
//
// Items are the results newly *certified* since the previous emission:
// every (node, value) pair a query's result list accepted, emitted at
// most once per node per execution. For an execution that completes
// un-truncated the values are exact aggregates; a budget-truncated
// execution may additionally emit the best-effort estimates its final
// answer contains (always lower bounds of the true values, so a consumer
// folding them into a merge threshold stays admissible).
//
// Stats are cumulative over the whole execution so far — a consumer that
// loses the query mid-flight (a cancellation) can account the work done
// up to the last batch it received.
type PartialResult struct {
	Items []Result
	Stats QueryStats
}

// FloorProvider supplies an external lower bound λ on the final k-th
// best value of a larger, multi-execution query — typically the running
// global k-th value of a distributed merge. Implementations must be
// monotone (successive calls never return a smaller value) and safe for
// concurrent use; the algorithms poll it at their context-poll cadence.
// The floor may already be non-zero before execution starts: a
// coordinator can prime λ from per-shard score summaries and hand the
// engine a warm floor with its very first poll.
//
// Admissibility contract: every value the provider returns must be a
// certified lower bound of the *final* global k-th result value. The
// algorithms then skip (strictly: bound < λ) exactly the candidates that
// cannot appear in that final top-k, so local answers stay lossless with
// respect to the global merge even though they may return fewer than k
// items.
type FloorProvider interface {
	Floor() float64
}

// BudgetSource tops up an exhausted Query.Budget mid-execution:
// TakeBudget consumes and returns up to want additional traversals from
// a shared pool (0 when the pool is dry). Implementations must be safe
// for concurrent use — parallel scan workers draw from one source. A
// distributed coordinator uses this to hand the budget slices of shards
// it cut early to the shards still running, so a budgeted query performs
// the work it was asked for instead of stranding slices.
//
// TakeBudget may block: a cross-process source round-trips to its
// coordinator for a grant and waits for the answer. Implementations must
// still return promptly once their query's context is cancelled (a
// denial, returning 0, is the correct unblocked answer) — the engine
// calls TakeBudget from its traversal loop and cannot poll the context
// while parked inside it.
type BudgetSource interface {
	TakeBudget(want int) int
}

// defaultPartialEvery is the emission batch cap when Query.PartialEvery
// is zero: matching ctxPollEvery means a batch flushes at every context
// poll point, so downstream λ updates are at most one poll stride stale.
const defaultPartialEvery = ctxPollEvery

// statsOnlyEvery throttles the frames that carry nothing but cumulative
// stats (skip-heavy phases certify no results): one per this many poll
// strides. Work accounting for a query cut mid-flight stays at most
// statsOnlyEvery×ctxPollEvery traversals stale, without a near-empty
// frame — a network packet, on the HTTP path — per poll stride.
const statsOnlyEvery = 8

// partialSink buffers certified results between OnPartial emissions.
// It is used from a single algorithm goroutine (runBaseParallel merges
// its per-worker lists first and emits from the merging goroutine).
type partialSink struct {
	fn      func(PartialResult)
	buf     []Result
	cap     int
	strides int             // poll strides since the last emission
	tr      *trace.Recorder // nil unless the query is traced
}

func newPartialSink(q *Query) partialSink {
	s := partialSink{fn: q.OnPartial, cap: q.PartialEvery, tr: q.Tracer}
	if s.cap <= 0 {
		s.cap = defaultPartialEvery
	}
	return s
}

// active reports whether emissions are wired up at all, so algorithms can
// skip bookkeeping entirely for plain queries.
func (p *partialSink) active() bool { return p.fn != nil }

// kept records one certified (node, value) the result list accepted,
// flushing a full buffer.
func (p *partialSink) kept(node int, value float64, stats *QueryStats) {
	if p.fn == nil {
		return
	}
	p.buf = append(p.buf, Result{Node: node, Value: value})
	if len(p.buf) >= p.cap {
		p.flush(stats)
	}
}

// tick runs at a poll point: buffered results flush immediately, while
// stats-only frames (nothing certified since the last emission) are
// throttled to one per statsOnlyEvery strides — frequent enough that a
// consumer cancelling the query mid-flight can still account its work.
func (p *partialSink) tick(stats *QueryStats) {
	if p.fn == nil {
		return
	}
	p.strides++
	if len(p.buf) > 0 || p.strides >= statsOnlyEvery {
		p.flush(stats)
	}
}

// finish emits any still-buffered items at the end of an execution; no
// empty final frame is produced (the execution's returned Answer already
// carries the final stats).
func (p *partialSink) finish(stats *QueryStats) {
	if p.fn != nil && len(p.buf) > 0 {
		p.flush(stats)
	}
}

// flush emits the buffered items (possibly none) with cumulative stats.
func (p *partialSink) flush(stats *QueryStats) {
	if p.fn == nil {
		return
	}
	items := p.buf
	p.buf = nil
	p.strides = 0
	if len(items) > 0 {
		p.tr.Emit(trace.KindEmit, len(items), 0, "")
	}
	p.fn(PartialResult{Items: items, Stats: *stats})
}
