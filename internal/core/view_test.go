package core

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// viewTopK adapts the Query/Run API to the positional shape these tests
// were written against.
func viewTopK(v *View, k int, agg Aggregate) ([]Result, error) {
	ans, err := v.Run(context.Background(), Query{K: k, Aggregate: agg})
	return ans.Results, err
}

func TestViewMatchesEngineInitially(t *testing.T) {
	g := randomGraph(50, 150, 3)
	scores := randomScores(50, 3)
	v, err := NewView(g, scores, 2)
	if err != nil {
		t.Fatal(err)
	}
	e := mustEngine(t, g, scores, 2)
	for _, agg := range []Aggregate{Sum, Avg, Count} {
		want, _, err := e.Base(10, agg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := viewTopK(v, 10, agg)
		if err != nil {
			t.Fatal(err)
		}
		if !sameResults(got, want) {
			t.Fatalf("%v: view %v != engine %v", agg, got, want)
		}
	}
}

func TestViewIncrementalUpdates(t *testing.T) {
	g := randomGraph(60, 180, 5)
	scores := randomScores(60, 5)
	v, err := NewView(g, scores, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	current := append([]float64(nil), scores...)
	for step := 0; step < 200; step++ {
		node := rng.Intn(60)
		var newScore float64
		switch rng.Intn(3) {
		case 0:
			newScore = 0
		case 1:
			newScore = 1
		default:
			newScore = rng.Float64()
		}
		if _, err := v.UpdateScore(node, newScore); err != nil {
			t.Fatal(err)
		}
		current[node] = newScore

		if step%20 != 0 {
			continue
		}
		// Cross-check against a fresh engine over the updated scores.
		e := mustEngine(t, g, current, 2)
		for _, agg := range []Aggregate{Sum, Avg, Count} {
			want, _, err := e.Base(8, agg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := viewTopK(v, 8, agg)
			if err != nil {
				t.Fatal(err)
			}
			if !sameResults(got, want) {
				t.Fatalf("step %d %v: view %v != engine %v", step, agg, got, want)
			}
		}
	}
}

func TestViewUpdateTouchedCount(t *testing.T) {
	// Path 0-1-2-3-4, h=1: updating node 2 touches S_1(2) = {1,2,3}.
	b := graph.NewBuilder(5, false)
	for i := 0; i+1 < 5; i++ {
		b.AddEdge(i, i+1)
	}
	g := b.Build()
	v, err := NewView(g, []float64{0, 0, 0, 0, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	touched, err := v.UpdateScore(2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if touched != 3 {
		t.Fatalf("touched = %d, want 3", touched)
	}
	if v.Sum(1) != 0.5 || v.Sum(2) != 0.5 || v.Sum(3) != 0.5 {
		t.Fatalf("sums not repaired: %v %v %v", v.Sum(1), v.Sum(2), v.Sum(3))
	}
	if v.Sum(0) != 0 || v.Sum(4) != 0 {
		t.Fatal("update leaked beyond the 1-hop neighborhood")
	}
	// No-op update touches nothing.
	touched, err = v.UpdateScore(2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if touched != 0 {
		t.Fatalf("no-op update touched %d", touched)
	}
	if v.Score(2) != 0.5 {
		t.Fatalf("Score(2) = %v", v.Score(2))
	}
}

func TestViewValidation(t *testing.T) {
	g := randomGraph(10, 20, 7)
	scores := make([]float64, 10)
	v, err := NewView(g, scores, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.UpdateScore(-1, 0.5); err == nil {
		t.Fatal("negative node accepted")
	}
	if _, err := v.UpdateScore(10, 0.5); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if _, err := v.UpdateScore(0, 1.5); err == nil {
		t.Fatal("score > 1 accepted")
	}
	if _, err := v.UpdateScore(0, math.NaN()); err == nil {
		t.Fatal("NaN accepted")
	}
	if _, err := viewTopK(v, 0, Sum); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := viewTopK(v, 3, Max); err == nil {
		t.Fatal("MAX accepted by view")
	}
	db := graph.NewBuilder(3, true)
	db.AddEdge(0, 1)
	if _, err := NewView(db.Build(), make([]float64, 3), 1); err == nil {
		t.Fatal("directed graph accepted")
	}
}

// Property: after any update sequence, incremental state equals Rebuild.
func TestViewNeverDriftsProperty(t *testing.T) {
	property := func(seed int64, updates []uint16) bool {
		n := 30
		g := randomGraph(n, 90, seed)
		scores := randomScores(n, seed)
		v, err := NewView(g, scores, 2)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		for _, raw := range updates {
			node := int(raw) % n
			if _, err := v.UpdateScore(node, rng.Float64()); err != nil {
				return false
			}
		}
		incremental := append([]float64(nil), v.sums...)
		v.Rebuild()
		for u := range incremental {
			if math.Abs(incremental[u]-v.sums[u]) > 1e-7 {
				t.Logf("seed=%d node %d drifted: %v vs %v", seed, u, incremental[u], v.sums[u])
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentQueriesOnSharedEngine(t *testing.T) {
	// After indexes (and cached orders) exist, an Engine must serve
	// concurrent queries; all must agree with the serial answer.
	g := randomGraph(120, 360, 11)
	scores := randomScores(120, 11)
	e := mustEngine(t, g, scores, 2)
	e.PrepareNeighborhoodIndex(2)
	e.PrepareDifferentialIndex(2)
	want, _, err := e.Base(10, Sum)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	errs := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		go func(i int) {
			algo := []Algorithm{AlgoBase, AlgoForward, AlgoBackward, AlgoBackwardNaive}[i%4]
			got, _, err := topK(e, algo, 10, Sum, &Options{Gamma: 0.3})
			if err != nil {
				errs <- err
				return
			}
			if !sameResults(got, want) {
				errs <- errMismatch
				return
			}
			errs <- nil
		}(i)
	}
	for i := 0; i < goroutines; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "concurrent query disagreed with serial Base" }

// TestViewRWMutexDiscipline exercises the concurrency contract View's doc
// comment promises: concurrent readers, exclusive writers, safe under the
// race detector, and consistent with a fresh engine once writes quiesce.
func TestViewRWMutexDiscipline(t *testing.T) {
	const n = 100
	g := randomGraph(n, 300, 17)
	scores := randomScores(n, 17)
	v, err := NewView(g, scores, 2)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.RWMutex
	stop := make(chan struct{})
	readErrs := make(chan error, 4)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					readErrs <- nil
					return
				default:
				}
				mu.RLock()
				_, err := viewTopK(v, 5, Sum)
				_ = v.Sum(id)
				_ = v.Score(id)
				mu.RUnlock()
				if err != nil {
					readErrs <- err
					return
				}
			}
		}(i)
	}

	rng := rand.New(rand.NewSource(18))
	for ev := 0; ev < 400; ev++ {
		mu.Lock()
		_, err := v.UpdateScore(rng.Intn(n), rng.Float64())
		mu.Unlock()
		if err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	for i := 0; i < 4; i++ {
		if err := <-readErrs; err != nil {
			t.Fatal(err)
		}
	}

	// Once writers quiesce, the view agrees with a fresh engine over a
	// snapshot of its scores.
	e := mustEngine(t, g, v.ScoresCopy(), 2)
	want, _, err := e.Base(10, Sum)
	if err != nil {
		t.Fatal(err)
	}
	got, err := viewTopK(v, 10, Sum)
	if err != nil {
		t.Fatal(err)
	}
	if !sameResults(got, want) {
		t.Fatalf("post-quiesce view %v != fresh engine %v", got, want)
	}
}

// TestViewScoresCopyIsSnapshot verifies the copy does not alias the view's
// mutable vector.
func TestViewScoresCopyIsSnapshot(t *testing.T) {
	g := randomGraph(20, 40, 19)
	v, err := NewView(g, randomScores(20, 19), 2)
	if err != nil {
		t.Fatal(err)
	}
	snap := v.ScoresCopy()
	before := snap[3]
	if _, err := v.UpdateScore(3, 1-before); err != nil {
		t.Fatal(err)
	}
	if snap[3] != before {
		t.Fatal("ScoresCopy aliased the view's score vector")
	}
}
