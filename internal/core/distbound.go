package core

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/topk"
	"repro/internal/trace"
)

// This file implements the paper's second stated property as a standalone
// pruning technique: "given the distribution of attribute values, it is
// possible to estimate the upper-bound value of aggregates". The bound
// needs no per-edge index — only the sorted score distribution — making it
// the index-free forward counterpart the paper says it is "looking for".
//
// For any node v, S_h(v) contains N(v) nodes, so
//
//	F_sum(v) <= top(N(v))     where top(m) = sum of the m largest scores
//
// and processing nodes in descending N(v) order makes the bound sequence
// non-increasing: the scan can stop outright at the first node whose bound
// cannot beat the current k-th value.

// distributionPrefix returns prefix sums of the scores sorted descending:
// prefix[m] = sum of the m largest scores (prefix[0] = 0). Scores are
// immutable per engine, so the result is memoized per score semantics
// (SUM-family vs COUNT) — ForwardDist queries and the floor ceiling both
// sit on the query hot path and must not re-pay the O(n log n) sort.
func (e *Engine) distributionPrefix(agg Aggregate) []float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	cache := &e.prefixSum
	if agg == Count {
		cache = &e.prefixCount
	}
	if *cache != nil {
		return *cache
	}
	n := e.g.NumNodes()
	sorted := make([]float64, n)
	for v := 0; v < n; v++ {
		sorted[v] = e.boundScore(v, agg)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	prefix := make([]float64, n+1)
	for i, s := range sorted {
		prefix[i+1] = prefix[i] + s
	}
	*cache = prefix
	return prefix
}

// distOrderFor returns the node ids in descending N(v) order (counting
// sort over neighborhood sizes, ties by ascending id). N(v) is immutable
// per engine, so the permutation is memoized — rebuilding it per query
// was the dominant allocation of the ForwardDist hot path.
func (e *Engine) distOrderFor(nix *graph.NeighborhoodIndex) []int32 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.distOrder != nil {
		return e.distOrder
	}
	n := e.g.NumNodes()
	maxN := 0
	for v := 0; v < n; v++ {
		if s := nix.N(v); s > maxN {
			maxN = s
		}
	}
	counts := make([]int32, maxN+2)
	for v := 0; v < n; v++ {
		counts[maxN-nix.N(v)+1]++
	}
	for i := 1; i < len(counts); i++ {
		counts[i] += counts[i-1]
	}
	order := make([]int32, n)
	for v := 0; v < n; v++ {
		slot := maxN - nix.N(v)
		order[counts[slot]] = int32(v)
		counts[slot]++
	}
	e.distOrder = order
	return order
}

// runForwardDist answers a top-k query by forward processing in descending
// N(v) order with the distribution upper bound. It requires only the N(v)
// index (no differential index). For SUM the bound sequence is
// non-increasing in N(v), so the first failing bound terminates the scan;
// for AVG the bound top(N(v))/N(v) is not monotone in N(v) and every node
// must be bound-checked (but most are skipped without BFS).
func (e *Engine) runForwardDist(x *exec) (Answer, error) {
	agg := x.q.Aggregate
	nix := e.PrepareNeighborhoodIndex(0)
	prefix := e.distributionPrefix(agg)

	order := e.distOrderFor(nix)

	// eligibleLeft tracks how many candidates the scan has not yet
	// decided, so the SUM-family early stop can account them as pruned.
	eligibleLeft := x.candCount

	t := x.s.traverser(e.g)
	list := topk.New(x.q.K)
	var stats QueryStats
	for _, v32 := range order {
		v := int(v32)
		if !x.eligible(v) {
			continue
		}
		if err := x.tick(&stats); err != nil {
			return Answer{}, err
		}
		nv := nix.N(v)
		bound := finishValue(agg, prefix[nv], nv)
		// The skip threshold folds the external floor λ in: the floor can
		// cut candidates before the local list fills, and mid-stream λ
		// updates tighten the stop point of the SUM-family scan.
		threshold := x.threshold(list)
		if threshold > 0 && bound < threshold {
			if agg != Avg {
				// SUM-family: bounds only shrink from here — stop.
				stats.Pruned += eligibleLeft
				x.tr.Emit(trace.KindCut, eligibleLeft, threshold, "distribution bound stop")
				break
			}
			stats.Pruned++
			eligibleLeft--
			continue
		}
		if !x.spend() {
			break
		}
		value, _, size := e.evaluate(t, v, agg)
		stats.Evaluated++
		stats.Visited += size
		if list.Offer(v, value) {
			x.sink.kept(v, value, &stats)
		}
		eligibleLeft--
	}
	return Answer{Results: list.Items(), Stats: stats}, nil
}

// ForwardDist is runForwardDist behind the positional convenience
// signature, with no cancellation, candidates, or budget.
func (e *Engine) ForwardDist(k int, agg Aggregate) ([]Result, QueryStats, error) {
	return e.positional(Query{Algorithm: AlgoForwardDist, K: k, Aggregate: agg})
}

// DistributionBound exposes the distribution upper bound top(N(v)) for
// tests: the sum of the N(v) largest bound-scores, finished into the
// aggregate's value domain.
func (e *Engine) DistributionBound(v int, agg Aggregate) float64 {
	nix := e.PrepareNeighborhoodIndex(0)
	prefix := e.distributionPrefix(agg)
	return finishValue(agg, prefix[nix.N(v)], nix.N(v))
}
