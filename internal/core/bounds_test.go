package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// exactValue computes F(u) with a fresh traverser, independent of any
// engine-internal caching.
func exactValue(e *Engine, u int, agg Aggregate) float64 {
	t := graph.NewTraverser(e.Graph())
	value, _, _ := e.evaluate(t, u, agg)
	return value
}

// TestForwardBoundAdmissible: Equation 1/2's bound must never fall below
// the true aggregate of the bounded neighbor, for any random graph, score
// vector, hop radius, and aggregate.
func TestForwardBoundAdmissible(t *testing.T) {
	aggs := []Aggregate{Sum, Avg, WeightedSum, Count}
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 15 + int(seed%17+17)%17
		g := randomGraph(n, 3*n, seed)
		scores := randomScores(n, seed+1)
		h := 1 + rng.Intn(3)
		e, err := NewEngine(g, scores, h)
		if err != nil {
			return false
		}
		for u := 0; u < n; u++ {
			for _, v32 := range g.Neighbors(u) {
				v := int(v32)
				for _, agg := range aggs {
					if e.ForwardBound(u, v, agg) < exactValue(e, v, agg)-1e-9 {
						t.Logf("seed=%d h=%d %v: bound(%d→%d)=%v < exact=%v",
							seed, h, agg, u, v, e.ForwardBound(u, v, agg), exactValue(e, v, agg))
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestBackwardBoundAdmissible: the Equation 3 bound must dominate the true
// aggregate for every node and every threshold γ.
func TestBackwardBoundAdmissible(t *testing.T) {
	aggs := []Aggregate{Sum, Avg, WeightedSum, Count}
	gammas := []float64{0, 0.2, 0.5, 0.8, 1}
	property := func(seed int64) bool {
		n := 12 + int(seed%13+13)%13
		g := randomGraph(n, 2*n, seed)
		scores := randomScores(n, seed+2)
		e, err := NewEngine(g, scores, 2)
		if err != nil {
			return false
		}
		for _, agg := range aggs {
			for _, gamma := range gammas {
				for v := 0; v < n; v++ {
					if e.BackwardBound(v, agg, gamma) < exactValue(e, v, agg)-1e-9 {
						t.Logf("seed=%d %v γ=%v: bound(%d)=%v < exact=%v",
							seed, agg, gamma, v, e.BackwardBound(v, agg, gamma), exactValue(e, v, agg))
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestBackwardBoundExactAtGammaZero: with γ=0 every non-zero node
// distributes, so the SUM bound equals the exact SUM (fRest = 0).
func TestBackwardBoundExactAtGammaZero(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		seed := int64(trial)
		n := 20
		g := randomGraph(n, 60, seed)
		scores := randomScores(n, seed+3)
		e := mustEngine(t, g, scores, 2)
		for v := 0; v < n; v++ {
			bound := e.BackwardBound(v, Sum, 0)
			exact := exactValue(e, v, Sum)
			if diff := bound - exact; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("trial %d node %d: γ=0 bound %v != exact %v", trial, v, bound, exact)
			}
		}
	}
}

// TestForwardBoundSelfCapTight: on a fully relevant graph (all scores 1)
// the self-cap arm N(v)-1+f(v) equals the exact aggregate, so the bound is
// tight.
func TestForwardBoundSelfCapTight(t *testing.T) {
	g := randomGraph(25, 75, 77)
	n := g.NumNodes()
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = 1
	}
	e := mustEngine(t, g, scores, 2)
	for u := 0; u < n; u++ {
		for _, v32 := range g.Neighbors(u) {
			v := int(v32)
			bound := e.ForwardBound(u, v, Sum)
			exact := exactValue(e, v, Sum)
			if diff := bound - exact; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("all-ones bound(%d→%d) = %v, want exact %v", u, v, bound, exact)
			}
		}
	}
}

// TestForwardPruningActuallyPrunes: on a graph with one clear hot region,
// LONA-Forward must prune a non-trivial fraction of nodes (otherwise the
// technique degenerates to Base and the figures would be flat).
func TestForwardPruningActuallyPrunes(t *testing.T) {
	// Hub-heavy graph: a few hubs with big neighborhoods dominate top-k;
	// the long tail of leaves should be pruned via their hub neighbors.
	b := graph.NewBuilder(400, false)
	for hub := 0; hub < 4; hub++ {
		for leaf := 4; leaf < 400; leaf++ {
			if (leaf+hub)%2 == 0 {
				b.AddEdge(hub, leaf)
			}
		}
	}
	g := b.Build()
	rng := rand.New(rand.NewSource(99))
	scores := make([]float64, 400)
	for i := range scores {
		scores[i] = rng.Float64() * 0.3
	}
	e := mustEngine(t, g, scores, 1)
	_, stats, err := e.Forward(3, Sum, OrderDegreeDesc)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pruned == 0 {
		t.Fatalf("no nodes pruned on a prunable instance: %+v", stats)
	}
	if stats.Evaluated+stats.Pruned != 400 {
		t.Fatalf("evaluated+pruned = %d, want 400", stats.Evaluated+stats.Pruned)
	}
}

// TestBackwardEarlyTermination: with sparse binary scores and γ below 1,
// LONA-Backward must evaluate far fewer nodes than Base does.
func TestBackwardEarlyTermination(t *testing.T) {
	n := 500
	g := randomGraph(n, 1500, 7)
	rng := rand.New(rand.NewSource(7))
	scores := make([]float64, n)
	for v := range scores {
		if rng.Float64() < 0.05 {
			scores[v] = 1
		}
	}
	e := mustEngine(t, g, scores, 2)
	_, stats, err := e.Backward(10, Sum, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Evaluated >= n/2 {
		t.Fatalf("Backward evaluated %d of %d nodes; early termination ineffective", stats.Evaluated, n)
	}
	// And still correct.
	want, _, _ := e.Base(10, Sum)
	got, _, _ := e.Backward(10, Sum, 0.5)
	if !sameResults(got, want) {
		t.Fatalf("early-terminating Backward wrong: got %v want %v", got, want)
	}
}

// TestEquivalencePropertyQuick is the property-based form of the central
// agreement test: for arbitrary seeds, all algorithms agree with Base.
func TestEquivalencePropertyQuick(t *testing.T) {
	property := func(seed int64, kRaw uint8, aggRaw uint8) bool {
		k := int(kRaw%15) + 1
		agg := []Aggregate{Sum, Avg, WeightedSum, Count}[aggRaw%4]
		n := 18 + int(seed%11+11)%11
		g := randomGraph(n, 3*n, seed)
		scores := randomScores(n, seed+5)
		e, err := NewEngine(g, scores, 2)
		if err != nil {
			return false
		}
		want, _, err := e.Base(k, agg)
		if err != nil {
			return false
		}
		for _, algo := range []Algorithm{AlgoForward, AlgoBackwardNaive, AlgoBackward} {
			got, _, err := topK(e, algo, k, agg, &Options{Gamma: 0.25})
			if err != nil || !sameResults(got, want) {
				t.Logf("seed=%d k=%d agg=%v algo=%v: got %v want %v err=%v", seed, k, agg, algo, got, want, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
