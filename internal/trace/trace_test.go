package trace

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestNilRecorderIsInert pins the zero-cost contract: every method of a
// nil recorder is a no-op, so untraced queries can record unconditionally.
func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	r.Emit(KindLambda, 1, 2.5, "x")
	r.Span(KindExec, time.Now(), 1, 0, "")
	r.Import([]Event{{Kind: KindBatch}}, 10)
	if got := r.ForShard(3); got != nil {
		t.Fatalf("ForShard on nil = %v, want nil", got)
	}
	if r.ID() != "" || r.SinceUS() != 0 {
		t.Fatalf("nil recorder leaked state: id=%q since=%d", r.ID(), r.SinceUS())
	}
	if r.Snapshot() != nil {
		t.Fatalf("nil recorder produced a snapshot")
	}
	var tr *Trace
	tr.Format(&strings.Builder{}) // must not panic
}

func TestShardScopesShareOneTimeline(t *testing.T) {
	r := New()
	r.Emit(KindPlan, 0, 0, "auto")
	r.ForShard(2).Emit(KindBatch, 5, 0.7, "")
	r.ForShard(0).Emit(KindCut, 0, 0.7, "pre-launch")

	tr := r.Snapshot()
	if len(tr.Events) != 3 {
		t.Fatalf("got %d events, want 3", len(tr.Events))
	}
	shards := map[string]int{}
	for _, e := range tr.Events {
		shards[e.Kind] = e.Shard
	}
	if shards[KindPlan] != -1 || shards[KindBatch] != 2 || shards[KindCut] != 0 {
		t.Fatalf("shard tags wrong: %v", shards)
	}
}

func TestNewWithIDPropagation(t *testing.T) {
	r := NewWithID("deadbeef00000000")
	if r.ID() != "deadbeef00000000" {
		t.Fatalf("ID = %q", r.ID())
	}
	if NewWithID("").ID() == "" {
		t.Fatalf("empty id was not replaced with a random one")
	}
	if New().ID() == New().ID() {
		t.Fatalf("two fresh recorders share an id")
	}
}

// TestImportRebasesOntoLocalTimeline is the cross-process stitching
// contract: worker events arrive with worker-relative offsets and must
// land after the local moment the request went out.
func TestImportRebasesOntoLocalTimeline(t *testing.T) {
	coord := New()
	coord.Emit(KindProbe, 0, 1.0, "")
	base := coord.SinceUS() + 500 // pretend the request left 500µs from now

	worker := []Event{
		{TUS: 10, Kind: KindExec, Shard: 1, DurUS: 40},
		{TUS: 60, Kind: KindEmit, Shard: 1, N: 3},
	}
	coord.Import(worker, base)

	tr := coord.Snapshot()
	if len(tr.Events) != 3 {
		t.Fatalf("got %d events, want 3", len(tr.Events))
	}
	// Snapshot sorts by offset: probe first, then the rebased pair.
	if tr.Events[1].TUS != base+10 || tr.Events[2].TUS != base+60 {
		t.Fatalf("rebased offsets wrong: %d, %d (base %d)", tr.Events[1].TUS, tr.Events[2].TUS, base)
	}
	if tr.Events[1].DurUS != 40 {
		t.Fatalf("span duration mutated by import: %d", tr.Events[1].DurUS)
	}
}

// TestNewIDIsW3CTraceWidth pins the id shape OTLP export depends on:
// 32 lowercase hex digits, never all zero.
func TestNewIDIsW3CTraceWidth(t *testing.T) {
	for i := 0; i < 100; i++ {
		id := NewID()
		if len(id) != 32 {
			t.Fatalf("NewID() = %q, want 32 hex digits", id)
		}
		if id == strings.Repeat("0", 32) {
			t.Fatalf("NewID() returned the invalid all-zero id")
		}
		for _, c := range id {
			if !strings.ContainsRune("0123456789abcdef", c) {
				t.Fatalf("NewID() = %q, non-hex rune %q", id, c)
			}
		}
	}
}

// TestImportClampsNegativeOffsets covers a worker whose wall clock runs
// ahead of the coordinator: the rebased offset would be negative and
// must be clamped to 0 so the stable sort keeps coordinator-first order.
func TestImportClampsNegativeOffsets(t *testing.T) {
	coord := New()
	coord.Emit(KindProbe, 0, 1.0, "")
	coord.Import([]Event{
		{TUS: -700, Kind: KindExec, Shard: 0, DurUS: 40},
		{TUS: 900, Kind: KindEmit, Shard: 0, N: 3},
	}, 500)

	tr := coord.Snapshot()
	if len(tr.Events) != 3 {
		t.Fatalf("got %d events, want 3", len(tr.Events))
	}
	for _, e := range tr.Events {
		if e.TUS < 0 {
			t.Fatalf("negative rebased offset survived import: %+v", e)
		}
	}
	if tr.Events[len(tr.Events)-1].TUS != 1400 {
		t.Fatalf("positive offsets must still rebase normally: %+v", tr.Events)
	}
}

// TestSnapshotAnchorsWallClock: exporters need an absolute anchor for
// the relative offsets.
func TestSnapshotAnchorsWallClock(t *testing.T) {
	before := time.Now().UnixNano()
	tr := New().Snapshot()
	after := time.Now().UnixNano()
	if tr.StartUnixNano < before || tr.StartUnixNano > after {
		t.Fatalf("StartUnixNano %d outside [%d, %d]", tr.StartUnixNano, before, after)
	}
}

func TestSnapshotSortsAndCopies(t *testing.T) {
	r := New()
	r.Import([]Event{{TUS: 300, Kind: KindCut, Shard: 0}}, 0)
	r.Emit(KindPlan, 0, 0, "") // recorded now, offset ~0 < 300
	tr := r.Snapshot()
	if tr.Events[0].Kind != KindPlan || tr.Events[1].Kind != KindCut {
		t.Fatalf("snapshot not sorted by offset: %+v", tr.Events)
	}
	tr.Events[0].Kind = "mutated"
	if r.Snapshot().Events[0].Kind == "mutated" {
		t.Fatalf("snapshot aliases the recorder's backing store")
	}
}

func TestFormat(t *testing.T) {
	r := NewWithID("0123456789abcdef")
	r.Emit(KindLambda, 0, 0.25, "")
	r.ForShard(1).Span(KindLaunch, time.Now().Add(-2*time.Millisecond), 100, 0.5, "streaming")
	var b strings.Builder
	r.Snapshot().Format(&b)
	out := b.String()
	for _, want := range []string{"trace 0123456789abcdef (2 events)", "coord", "shard 1", "lambda", "launch", "dur=", "n=100", "streaming"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted trace missing %q:\n%s", want, out)
		}
	}
}

func TestContextRoundTrip(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatalf("empty context yielded a recorder")
	}
	r := New()
	ctx := NewContext(context.Background(), r)
	if FromContext(ctx) != r {
		t.Fatalf("recorder did not round-trip through context")
	}
	if NewContext(context.Background(), nil) != context.Background() {
		t.Fatalf("attaching nil should return ctx unchanged")
	}
	// The nil flowing out of FromContext must stay inert end to end.
	FromContext(context.Background()).Emit(KindRebuild, 1, 0, "")
}
