// Package trace is a lightweight per-query trace recorder: the EXPLAIN
// surface for the sharded engine. A Recorder collects typed events —
// plan choice, cache hit/miss, shard launches and cuts, every partial
// batch with the λ it produced, budget grants and refunds, edit-repair
// vs rebuild decisions — into one timeline that spans coordinator and
// workers.
//
// The design is allocation-conscious in the only way that matters for a
// hot query path: every Recorder method is safe on a nil receiver and
// returns immediately, so code records unconditionally (`x.tr.Emit(...)`)
// and a zero-value core.Query pays a single nil check per recorded site.
// No goroutines, no channels, no background flushing — just an
// append-under-mutex event list shared by every scope of one query.
package trace

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Event kinds. Plain strings so events round-trip through JSON (the HTTP
// transport ships worker events in the stream's final summary frame)
// without a registry on either side.
const (
	KindPlan       = "plan"         // planner decision (note = algorithm: reason)
	KindCacheHit   = "cache-hit"    // answered from the server cache
	KindCacheMiss  = "cache-miss"   // executed for real
	KindProbe      = "probe"        // shard bound probe (value = Bound(q))
	KindLaunch     = "launch"       // span: one launched shard query (n = budget, value = probed bound)
	KindExec       = "exec"         // span: one engine execution (n = evaluated)
	KindEmit       = "emit"         // engine flushed a partial batch (n = items)
	KindBatch      = "batch"        // coordinator folded a partial batch (n = items, value = λ after)
	KindLambda     = "lambda"       // coordinator raised λ (value = new λ)
	KindPrime      = "lambda-prime" // λ seeded from score sketches pre-launch (n = k, value = primed λ)
	KindFloor      = "floor"        // engine observed a raised floor (value = λ seen)
	KindCut        = "cut"          // a shard or scan ended early (note = why)
	KindGrant      = "budget-grant"
	KindRefund     = "budget-refund"
	KindTruncated  = "truncated"   // engine ran out of budget
	KindPhase      = "phase"       // algorithm phase boundary (note = phase)
	KindShardStats = "shard-stats" // per-shard final accounting (n = evaluated)
	KindRepair     = "edit-repair" // incremental repair chosen (n = affected nodes)
	KindRebuild    = "edit-rebuild"
)

// Event is one timeline entry. TUS is microseconds since the recorder
// started; DurUS > 0 marks a span (launch, exec). Shard is -1 for
// coordinator/server-scope events. N, Value, and Note carry
// kind-specific payload (batch sizes, λ values, reasons).
type Event struct {
	TUS   int64   `json:"t_us"`
	DurUS int64   `json:"dur_us,omitempty"`
	Kind  string  `json:"kind"`
	Shard int     `json:"shard"`
	N     int     `json:"n,omitempty"`
	Value float64 `json:"value,omitempty"`
	Note  string  `json:"note,omitempty"`
}

// sink is the shared backing store of one query's recorders. All shard
// scopes of a query append here, so the snapshot is already one stitched
// timeline.
type sink struct {
	mu     sync.Mutex
	id     string
	start  time.Time
	events []Event
}

// Recorder records events for one scope (shard tag) of a query trace.
// Derive per-shard scopes with ForShard; they share the parent's sink.
// A nil *Recorder is valid and records nothing — the zero-cost path.
type Recorder struct {
	s     *sink
	shard int
}

var idSeq struct {
	mu  sync.Mutex
	rnd *rand.Rand
}

// NewID returns a 32-hex-digit id, the width of a W3C traceparent
// trace-id, so recorded timelines can be exported as OTLP spans without
// re-keying. math/rand seeded once with the clock is plenty: ids only
// need to be distinct among concurrent traced queries on one
// coordinator, not unguessable. All-zero ids are invalid in W3C
// traceparent; the odds here are negligible but the loop keeps the
// invariant explicit.
func NewID() string {
	idSeq.mu.Lock()
	defer idSeq.mu.Unlock()
	if idSeq.rnd == nil {
		var seed [8]byte
		binary.LittleEndian.PutUint64(seed[:], uint64(time.Now().UnixNano()))
		idSeq.rnd = rand.New(rand.NewSource(int64(binary.LittleEndian.Uint64(seed[:]))))
	}
	for {
		hi, lo := idSeq.rnd.Uint64(), idSeq.rnd.Uint64()
		if hi|lo != 0 {
			return fmt.Sprintf("%016x%016x", hi, lo)
		}
	}
}

// New returns a coordinator-scope recorder (shard tag -1) with a fresh
// random id.
func New() *Recorder {
	return NewWithID(NewID())
}

// NewWithID returns a recorder carrying a caller-chosen id — the worker
// side of HTTP propagation, where the id arrives in a request header.
func NewWithID(id string) *Recorder {
	if id == "" {
		id = NewID()
	}
	return &Recorder{s: &sink{id: id, start: time.Now()}, shard: -1}
}

// ID returns the trace id ("" on a nil recorder).
func (r *Recorder) ID() string {
	if r == nil {
		return ""
	}
	return r.s.id
}

// ForShard returns a recorder that tags events with the given shard
// index but appends to the same timeline. Nil in, nil out.
func (r *Recorder) ForShard(shard int) *Recorder {
	if r == nil {
		return nil
	}
	return &Recorder{s: r.s, shard: shard}
}

// Emit records an instantaneous event. No-op on a nil recorder.
func (r *Recorder) Emit(kind string, n int, value float64, note string) {
	if r == nil {
		return
	}
	r.s.mu.Lock()
	r.s.events = append(r.s.events, Event{
		TUS: time.Since(r.s.start).Microseconds(), Kind: kind,
		Shard: r.shard, N: n, Value: value, Note: note,
	})
	r.s.mu.Unlock()
}

// Span records an event that began at begin and ends now. No-op on a
// nil recorder.
func (r *Recorder) Span(kind string, begin time.Time, n int, value float64, note string) {
	if r == nil {
		return
	}
	r.s.mu.Lock()
	r.s.events = append(r.s.events, Event{
		TUS:   begin.Sub(r.s.start).Microseconds(),
		DurUS: time.Since(begin).Microseconds(),
		Kind:  kind, Shard: r.shard, N: n, Value: value, Note: note,
	})
	r.s.mu.Unlock()
}

// SinceUS returns microseconds elapsed since the recorder started — the
// rebase offset captured just before a cross-process hop so Import can
// place remote events on the local timeline.
func (r *Recorder) SinceUS() int64 {
	if r == nil {
		return 0
	}
	return time.Since(r.s.start).Microseconds()
}

// Import merges events recorded by a remote recorder (a worker) into
// this timeline, shifting their offsets by baseUS — the local clock
// reading when the remote call began. Worker clocks are not synchronized
// with the coordinator's; rebasing onto the request start keeps ordering
// honest to within one network round trip, which is all an EXPLAIN
// timeline needs.
// Rebased offsets are clamped at zero: a worker whose wall clock runs
// ahead of the coordinator's can report events that would otherwise land
// before the request started, and negative offsets break the stable
// TUS sort order downstream consumers (Format, OTLP export) assume.
func (r *Recorder) Import(events []Event, baseUS int64) {
	if r == nil || len(events) == 0 {
		return
	}
	r.s.mu.Lock()
	for _, e := range events {
		e.TUS += baseUS
		if e.TUS < 0 {
			e.TUS = 0
		}
		r.s.events = append(r.s.events, e)
	}
	r.s.mu.Unlock()
}

// Trace is an assembled timeline: the snapshot handed to callers and
// serialized into /v1/topk responses. StartUnixNano anchors the
// relative TUS offsets to the recorder's wall-clock start so exporters
// (OTLP) can emit absolute timestamps; it is omitted from JSON to keep
// the /v1/topk wire shape unchanged.
type Trace struct {
	ID            string  `json:"id,omitempty"`
	Events        []Event `json:"events"`
	StartUnixNano int64   `json:"-"`
}

// Snapshot copies the recorded events, sorted by start offset. Safe to
// call while other scopes still record. Returns nil on a nil recorder.
func (r *Recorder) Snapshot() *Trace {
	if r == nil {
		return nil
	}
	r.s.mu.Lock()
	events := make([]Event, len(r.s.events))
	copy(events, r.s.events)
	id := r.s.id
	start := r.s.start
	r.s.mu.Unlock()
	sort.SliceStable(events, func(i, j int) bool { return events[i].TUS < events[j].TUS })
	return &Trace{ID: id, Events: events, StartUnixNano: start.UnixNano()}
}

// Format renders the timeline for terminals and slow-query logs: one
// line per event, offset-first, with spans showing their duration.
func (t *Trace) Format(w io.Writer) {
	if t == nil {
		return
	}
	fmt.Fprintf(w, "trace %s (%d events)\n", t.ID, len(t.Events))
	for _, e := range t.Events {
		scope := "coord"
		if e.Shard >= 0 {
			scope = fmt.Sprintf("shard %d", e.Shard)
		}
		fmt.Fprintf(w, "%12.3fms  %-8s %-13s", float64(e.TUS)/1000, scope, e.Kind)
		if e.DurUS > 0 {
			fmt.Fprintf(w, " dur=%.3fms", float64(e.DurUS)/1000)
		}
		if e.N != 0 {
			fmt.Fprintf(w, " n=%d", e.N)
		}
		if e.Value != 0 {
			fmt.Fprintf(w, " value=%.6g", e.Value)
		}
		if e.Note != "" {
			fmt.Fprintf(w, " %s", e.Note)
		}
		fmt.Fprintln(w)
	}
}

// ctxKey carries a Recorder through code that takes a context instead of
// a core.Query — the structural-edit path.
type ctxKey struct{}

// NewContext attaches a recorder to ctx. Attaching nil returns ctx
// unchanged.
func NewContext(ctx context.Context, r *Recorder) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, r)
}

// FromContext returns the recorder attached by NewContext, or nil — and
// nil flows straight into the nil-safe methods above.
func FromContext(ctx context.Context) *Recorder {
	r, _ := ctx.Value(ctxKey{}).(*Recorder)
	return r
}
