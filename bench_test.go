// Benchmarks regenerating the paper's evaluation in testing.B form: one
// benchmark per figure (Figures 1–6), each sweeping the three algorithms
// over representative k values, plus the ablation benchmarks A2/A4/A5/A6
// and micro-benchmarks for the substrates.
//
// These run at a reduced dataset scale so `go test -bench=.` completes in
// minutes on one core; `cmd/lonabench` runs the same specs at full scale
// and writes a markdown report (-out) plus BENCH_serving.json. Set
// LONA_BENCH_SCALE to override.
package lona_test

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"

	lona "repro"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/relevance"
	"repro/internal/relstore"
	"repro/internal/topk"
)

// benchScale is the dataset scale for benchmarks (full figures use 1.0 via
// cmd/lonabench).
func benchScale() float64 {
	if s := os.Getenv("LONA_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.1
}

var (
	wsOnce sync.Once
	ws     *bench.Workspace
)

// workspace shares generated datasets and prepared indexes across all
// benchmarks in the binary.
func workspace() *bench.Workspace {
	wsOnce.Do(func() {
		ws = bench.NewWorkspace(bench.Config{Scale: benchScale(), Seed: 20100301})
	})
	return ws
}

// benchKs is the k subset benchmarked per figure (the paper's axis runs
// 1..300; endpoints and midpoint capture the trend).
var benchKs = []int{1, 100, 300}

// benchFigure runs one paper figure as nested sub-benchmarks.
func benchFigure(b *testing.B, spec bench.FigureSpec) {
	w := workspace()
	e, err := w.Engine(spec.Dataset, spec.Rel, spec.R, 2)
	if err != nil {
		b.Fatal(err)
	}
	for _, algo := range []core.Algorithm{core.AlgoBase, core.AlgoForward, core.AlgoBackward} {
		for _, k := range benchKs {
			b.Run(fmt.Sprintf("%s/k=%d", algo, k), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := e.Run(context.Background(), core.Query{
						Algorithm: algo, K: k, Aggregate: spec.Agg,
						Options: core.Options{Gamma: spec.Gamma, Order: bench.OrderFor(spec.Agg)},
					}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig1CollaborationSUM regenerates Figure 1: top-k SUM on the
// collaboration network, r=0.01.
func BenchmarkFig1CollaborationSUM(b *testing.B) { benchFigure(b, bench.PaperFigures[0]) }

// BenchmarkFig2CitationSUM regenerates Figure 2: top-k SUM on the citation
// network, r=0.01.
func BenchmarkFig2CitationSUM(b *testing.B) { benchFigure(b, bench.PaperFigures[1]) }

// BenchmarkFig3IntrusionSUM regenerates Figure 3: top-k SUM on the
// intrusion network, r=0.2 binary.
func BenchmarkFig3IntrusionSUM(b *testing.B) { benchFigure(b, bench.PaperFigures[2]) }

// BenchmarkFig4CollaborationAVG regenerates Figure 4: top-k AVG on the
// collaboration network.
func BenchmarkFig4CollaborationAVG(b *testing.B) { benchFigure(b, bench.PaperFigures[3]) }

// BenchmarkFig5CitationAVG regenerates Figure 5: top-k AVG on the citation
// network (where the paper notes Forward deteriorates with k).
func BenchmarkFig5CitationAVG(b *testing.B) { benchFigure(b, bench.PaperFigures[4]) }

// BenchmarkFig6IntrusionAVG regenerates Figure 6: top-k AVG on the
// intrusion network.
func BenchmarkFig6IntrusionAVG(b *testing.B) { benchFigure(b, bench.PaperFigures[5]) }

// BenchmarkA2BackwardGamma is ablation A2: LONA-Backward's threshold γ.
func BenchmarkA2BackwardGamma(b *testing.B) {
	w := workspace()
	e, err := w.Engine(bench.Collaboration, bench.MixtureScores, 0.01, 2)
	if err != nil {
		b.Fatal(err)
	}
	for _, gamma := range []float64{0, 0.2, 0.5, 0.9} {
		b.Run(fmt.Sprintf("gamma=%v", gamma), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := e.Backward(100, core.Sum, gamma); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkA4ForwardOrder is ablation A4: LONA-Forward's queue order.
func BenchmarkA4ForwardOrder(b *testing.B) {
	w := workspace()
	e, err := w.Engine(bench.Collaboration, bench.MixtureScores, 0.01, 2)
	if err != nil {
		b.Fatal(err)
	}
	for _, order := range []core.QueueOrder{core.OrderNatural, core.OrderDegreeDesc, core.OrderScoreDesc} {
		b.Run(order.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := e.Forward(100, core.Sum, order); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkA5Relational is experiment A5: the introduction's RDBMS
// self-join plan versus graph-native Base on identical inputs.
func BenchmarkA5Relational(b *testing.B) {
	g := lona.CollaborationNetwork(benchScale()*0.25, 20100301)
	scores := lona.MixtureScores(g, 0.01, 20100302)
	e, err := lona.NewEngine(g, scores, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("RDBMS-plan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := relstore.NeighborhoodTopK(g, scores, 2, 100, false); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Base", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := e.Run(context.Background(), lona.Query{Algorithm: lona.AlgoBase, K: 100, Aggregate: lona.Sum}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkA6Partitioned is experiment A6: distributed execution over
// BFS-grown partitions (the paper's future-work infrastructure).
func BenchmarkA6Partitioned(b *testing.B) {
	g := lona.CollaborationNetwork(benchScale(), 20100301)
	scores := lona.MixtureScores(g, 0.01, 20100302)
	for _, parts := range []int{1, 2, 4, 8} {
		p, err := partition.BFSGrow(g, parts)
		if err != nil {
			b.Fatal(err)
		}
		x, err := partition.NewExecutor(g, scores, 2, p)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("parts=%d", parts), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := x.Run(context.Background(), core.Query{K: 100, Aggregate: core.Sum}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkS2Cluster is the distributed-serving benchmark: the cluster
// coordinator fanning one query out across partition-local engines,
// in-process. cmd/lonabench runs the full S2 grid (with the HTTP
// transport point and the single-engine baseline) and writes
// BENCH_cluster.json.
func BenchmarkS2Cluster(b *testing.B) {
	g := lona.CollaborationNetwork(benchScale(), 20100301)
	scores := lona.MixtureScores(g, 0.01, 20100302)
	for _, parts := range []int{2, 4, 8} {
		coord, err := lona.NewLocalCoordinator(g, scores, 2, parts, lona.CoordinatorOptions{})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("parts=%d", parts), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := coord.Run(context.Background(), lona.Query{K: 100, Aggregate: lona.Sum, Algorithm: lona.AlgoBase}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkS3Mutation measures the structural-mutation repair path: one
// edit batch applied through View.ApplyEdits (successor graph derivation,
// incremental index repair, aggregate repair of affected nodes) per
// iteration, against the full NewView rebuild as the baseline.
// cmd/lonabench runs the full S3 batch-size sweep with a byte-identical
// equivalence gate and writes BENCH_mutation.json.
func BenchmarkS3Mutation(b *testing.B) {
	g := lona.CollaborationNetwork(benchScale(), 20100301)
	scores := lona.MixtureScores(g, 0.01, 20100302)
	b.Run("incremental-batch16", func(b *testing.B) {
		view, err := lona.NewView(g, scores, 2)
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Draw a batch of genuinely new edges outside the timer, time
			// the incremental apply, then revert outside the timer — every
			// iteration repairs the same pristine graph the rebuild
			// baseline rebuilds, so the two numbers stay comparable.
			b.StopTimer()
			cur := view.Graph()
			edits := make([]lona.Edit, 0, 16)
			for len(edits) < 16 {
				u, v := rng.Intn(cur.NumNodes()), rng.Intn(cur.NumNodes())
				if u != v && !cur.HasEdge(u, v) {
					edits = append(edits, lona.Edit{Op: lona.EditAddEdge, U: u, V: v})
				}
			}
			b.StartTimer()
			if _, err := view.ApplyEdits(context.Background(), edits); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			revert := make([]lona.Edit, len(edits))
			for j, e := range edits {
				revert[j] = lona.Edit{Op: lona.EditRemoveEdge, U: e.U, V: e.V}
			}
			if _, err := view.ApplyEdits(context.Background(), revert); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := lona.NewView(g, scores, 2); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkS4Stream measures the streaming sharded query path: one
// coordinator fan-out per iteration with partial-result batches, mid-query
// λ pushdown, and within-shard cuts, against the whole-shard-cut mode.
// cmd/lonabench runs the full S4 comparison on the skewed scenario (with a
// byte-identical gate against the single engine) and writes
// BENCH_stream.json.
func BenchmarkS4Stream(b *testing.B) {
	g := lona.CollaborationNetwork(benchScale(), 20100301)
	scores := lona.MixtureScores(g, 0.01, 20100302)
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"streaming", false}, {"whole-shard", true}} {
		coord, err := lona.NewLocalCoordinator(g, scores, 2, 4, lona.CoordinatorOptions{DisableStreaming: mode.disable})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := coord.Run(context.Background(), lona.Query{K: 100, Aggregate: lona.Sum, Algorithm: lona.AlgoForwardDist}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIndexBuild measures the offline costs the paper amortizes: the
// N(v) index and the differential index.
func BenchmarkIndexBuild(b *testing.B) {
	g := lona.CollaborationNetwork(benchScale(), 20100301)
	b.Run("neighborhood", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			graph.BuildNeighborhoodIndex(g, 2, 1)
		}
	})
	b.Run("differential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			graph.BuildDifferentialIndex(g, 2, 1)
		}
	})
}

// BenchmarkTraversal measures the raw 2-hop BFS substrate.
func BenchmarkTraversal(b *testing.B) {
	g := lona.CollaborationNetwork(benchScale(), 20100301)
	scores := lona.MixtureScores(g, 0.01, 20100302)
	t := graph.NewTraverser(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.SumWithin(i%g.NumNodes(), 2, scores)
	}
}

// BenchmarkTopKHeap measures the bounded heap under adversarial
// (ascending) offers.
func BenchmarkTopKHeap(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l := topk.New(100)
		for v := 0; v < 10000; v++ {
			l.Offer(v, float64(v))
		}
	}
}

// BenchmarkGenerators measures dataset simulation throughput.
func BenchmarkGenerators(b *testing.B) {
	scale := gen.DatasetScale(benchScale())
	b.Run("collaboration", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gen.Collaboration(scale, int64(i))
		}
	})
	b.Run("citation", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gen.Citation(scale, int64(i))
		}
	})
	b.Run("intrusion", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gen.Intrusion(scale, int64(i))
		}
	})
}

// BenchmarkMixtureScores measures relevance-function construction.
func BenchmarkMixtureScores(b *testing.B) {
	g := lona.CollaborationNetwork(benchScale(), 20100301)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		relevance.Mixture(g, relevance.MixtureParams{BlackingRatio: 0.01}, int64(i))
	}
}
