// Package lona is the public API of this repository: a Go implementation
// of the LONA (Local Neighborhood Aggregation) framework from "Top-K
// Aggregation Queries over Large Networks" (Yan, He, Zhu, Han — ICDE 2010).
//
// A top-k neighborhood aggregation query asks: over a network with a
// relevance score f(v) ∈ [0,1] on every node, which k nodes have the
// highest aggregate (SUM, AVG, …) of f over their h-hop neighborhoods?
// These queries power "popularity in your social circle" features,
// co-expression lookups in biology, and scanner detection in network
// security — the paper's three evaluation domains.
//
// # Quick start
//
// A query is a lona.Query value executed by Run — one context-aware entry
// point shared by the Engine, the Planner, the View, and the serving API:
//
//	g := lona.NewGraphBuilder(4, false)
//	g.AddEdge(0, 1)
//	g.AddEdge(1, 2)
//	g.AddEdge(2, 3)
//	engine, err := lona.NewEngine(g.Build(), []float64{0.9, 0.1, 0.8, 0.2}, 2)
//	if err != nil { ... }
//	ans, err := engine.Run(ctx, lona.Query{K: 2, Aggregate: lona.Sum})
//	// ans.Results, ans.Stats; ans.Plan records the planner's choice.
//
// A zero Algorithm (AlgoAuto) lets the cost-based planner choose the
// strategy; naming one (AlgoForward, AlgoBackward, …) runs it directly.
// The context cancels or deadlines the query cooperatively: the algorithm
// loops poll it, return its error promptly, and leave the engine reusable.
// A Query can also restrict the ranked nodes (Candidates) and cap the
// work spent (Budget) for Fagin-style early termination.
//
// Three query strategies are provided, all returning identical answers:
// the naive Base scan, LONA-Forward (differential-index pruning), and
// LONA-Backward (partial score distribution with upper-bound verification)
// — plus Algorithm 2's BackwardNaive, a parallel Base, and h-hop weighted,
// COUNT and MAX aggregate variants.
//
// The examples/ directory contains runnable scenarios, cmd/lonabench
// regenerates every figure of the paper's evaluation, and cmd/lonad serves
// queries as a long-lived daemon; see README.md for a quickstart and the
// package map.
package lona

import (
	"context"
	"io"
	"net/http"

	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/journal"
	"repro/internal/netio"
	"repro/internal/otlp"
	"repro/internal/relevance"
	"repro/internal/server"
	"repro/internal/snapshot"
	"repro/internal/trace"
)

// Graph is an immutable CSR network; build one with NewGraphBuilder or a
// generator, or load one with ReadGraph.
type Graph = graph.Graph

// GraphBuilder accumulates edges and produces a Graph.
type GraphBuilder = graph.Builder

// NewGraphBuilder returns a builder for a graph with n nodes; undirected
// unless directed is set.
func NewGraphBuilder(n int, directed bool) *GraphBuilder {
	return graph.NewBuilder(n, directed)
}

// Engine answers top-k neighborhood aggregation queries; construct with
// NewEngine.
type Engine = core.Engine

// NewEngine validates the (graph, scores, hop-radius) triple and returns a
// query engine. Scores must lie in [0,1], one per node.
func NewEngine(g *Graph, scores []float64, h int) (*Engine, error) {
	return core.NewEngine(g, scores, h)
}

// Query is the first-class description of a top-k request: algorithm
// (AlgoAuto delegates to the planner), k, aggregate, options, an optional
// candidate restriction, and an optional traversal budget. Execute it with
// Engine.Run, Planner.Run, or View.Run.
type Query = core.Query

// Answer bundles a query's results, work stats, the planner's Plan when
// AlgoAuto chose the strategy, and whether a Budget truncated the run.
type Answer = core.Answer

// Result is one (node, value) entry of a top-k answer.
type Result = core.Result

// QueryStats reports evaluation/pruning/distribution counts for a query.
type QueryStats = core.QueryStats

// Options tunes a query (backward threshold γ, forward queue order,
// parallelism).
type Options = core.Options

// Aggregate selects the neighborhood aggregation function.
type Aggregate = core.Aggregate

// Aggregates supported by the engine. Sum and Avg are the paper's two
// primary functions; WeightedSum is footnote 1's distance-weighted
// variant; Count and Max are natural extensions.
const (
	Sum         = core.Sum
	Avg         = core.Avg
	WeightedSum = core.WeightedSum
	Count       = core.Count
	Max         = core.Max
)

// Algorithm selects a query strategy.
type Algorithm = core.Algorithm

// Algorithms. AlgoAuto (the zero value) delegates the choice to the
// cost-based planner; AlgoBase is the paper's comparison baseline;
// AlgoForward and AlgoBackward are the LONA contributions.
const (
	AlgoAuto          = core.AlgoAuto
	AlgoBase          = core.AlgoBase
	AlgoBaseParallel  = core.AlgoBaseParallel
	AlgoForward       = core.AlgoForward
	AlgoBackwardNaive = core.AlgoBackwardNaive
	AlgoBackward      = core.AlgoBackward
	AlgoForwardDist   = core.AlgoForwardDist
)

// Planner chooses a query strategy from cheap input statistics, like a
// database optimizer; see NewPlanner.
type Planner = core.Planner

// Plan is a planner decision with its rationale.
type Plan = core.Plan

// NewPlanner returns a cost-based algorithm chooser over the engine.
func NewPlanner(e *Engine) *Planner { return core.NewPlanner(e) }

// ParseAggregate maps an aggregate's flag/wire name (case-insensitive,
// e.g. "sum", "avg") to its enum — the single name mapping shared by
// cmd/lona and the serving API.
func ParseAggregate(name string) (Aggregate, error) { return core.ParseAggregate(name) }

// ParseAlgorithm maps an engine algorithm's flag/wire name
// (case-insensitive, e.g. "forward", "backward-naive") to its enum.
// Serving-level modes ("auto", "view") are not algorithms and are handled
// by the callers.
func ParseAlgorithm(name string) (Algorithm, error) { return core.ParseAlgorithm(name) }

// AttributeTable is the paper's node-attribute set Λ = {a1,…,at}; derive
// relevance vectors from it with its Relevance* methods or LogisticModel.
type AttributeTable = attr.Table

// NewAttributeTable returns an empty attribute table for n nodes.
func NewAttributeTable(n int) *AttributeTable { return attr.NewTable(n) }

// LogisticModel is a classifier-style relevance function over attributes
// (problem P1's "how likely a user is a database expert").
type LogisticModel = attr.LogisticModel

// QueueOrder selects LONA-Forward's processing order.
type QueueOrder = core.QueueOrder

// Queue orders for LONA-Forward.
const (
	OrderNatural    = core.OrderNatural
	OrderDegreeDesc = core.OrderDegreeDesc
	OrderScoreDesc  = core.OrderScoreDesc
)

// View is a materialized neighborhood-aggregate view with incremental
// maintenance under relevance updates (UpdateScore) and structural edits
// (ApplyEdits) — the dynamic-network extension for workloads like the
// paper's "large, dynamic intrusion network".
type View = core.View

// Edit is one structural mutation of a graph: an edge insertion or
// removal, or a node addition. Batches apply atomically through
// Graph.ApplyEdits, View.ApplyEdits, and the server's /v1/edges.
type Edit = graph.Edit

// EditOp identifies an Edit's kind.
type EditOp = graph.EditOp

// The structural edit kinds.
const (
	EditAddEdge    = graph.EditAddEdge
	EditRemoveEdge = graph.EditRemoveEdge
	EditAddNode    = graph.EditAddNode
)

// ViewEditResult reports what a View.ApplyEdits batch did.
type ViewEditResult = core.EditResult

// NewView materializes F_sum for every node and keeps it consistent under
// UpdateScore calls at O(|S_h(v)|) per update.
func NewView(g *Graph, scores []float64, h int) (*View, error) {
	return core.NewView(g, scores, h)
}

// Server is a long-lived concurrent query service over one
// (graph, relevance, h) triple: an HTTP/JSON front-end to the engine with
// a generation-keyed result cache, singleflight collapsing of duplicate
// in-flight queries, live score updates repairing a materialized View, and
// serving metrics. cmd/lonad wraps it as a daemon; construct with
// NewServer and mount Handler() on any http.Server.
type Server = server.Server

// ServerOptions tunes a Server (cache capacity in bytes and sharding,
// worker parallelism, the wide-event logger, SLO, and trace exporter).
// The zero value is a sensible default.
type ServerOptions = server.Options

// ServerSLO is a latency service-level objective judged against the
// server's rolling 120s latency window: Target fraction of queries must
// finish within Latency. When the window's error-budget burn rate
// reaches 1, /v1/health flips 200 → 503 ("degraded") and /metrics
// exposes the burn rate. The zero value disables SLO tracking.
type ServerSLO = server.SLO

// ServerSLOStats is the SLO section of /v1/stats and /v1/health.
type ServerSLOStats = server.SLOStats

// OTLPExporter ships query traces to an OpenTelemetry collector as
// OTLP/JSON span batches from a bounded background queue — set it as
// ServerOptions.TraceExporter. Close it on shutdown to flush.
type OTLPExporter = otlp.Exporter

// OTLPExporterOptions tunes the exporter (sampling ratio, queue size).
type OTLPExporterOptions = otlp.ExporterOptions

// NewOTLPExporter starts an exporter POSTing trace batches to
// <endpoint>/v1/traces (Jaeger, Tempo, or any OTLP/HTTP collector).
func NewOTLPExporter(endpoint string, opts OTLPExporterOptions) *OTLPExporter {
	return otlp.NewExporter(endpoint, opts)
}

// ServerQueryRequest is a decoded /v1/topk request — including the
// per-request timeout_ms deadline, traversal budget, and candidate
// restriction — usable directly against Server.Run for in-process serving.
type ServerQueryRequest = server.QueryRequest

// ServerScoreUpdate is one relevance mutation of a /v1/scores batch.
type ServerScoreUpdate = server.ScoreUpdate

// ServerEditRequest is one structural mutation of a /v1/edges batch.
type ServerEditRequest = server.EditRequest

// ServerEditsResult reports what an applied /v1/edges batch did.
type ServerEditsResult = server.EditsResult

// ServerAnswer is a query response — /v1/topk's wire format, returned
// directly by Server.Run for in-process callers.
type ServerAnswer = server.Answer

// ServerTrace is the assembled execution timeline a /v1/topk answer
// carries when the request asked "trace": true.
type ServerTrace = server.TraceOut

// TraceRecorder collects one query's execution timeline. Set it as
// Query.Tracer to trace an in-process engine or coordinator run; a nil
// recorder records nothing, so untraced queries pay (almost) nothing.
type TraceRecorder = trace.Recorder

// TraceEvent is one timeline entry: offset, kind, shard scope, payload.
type TraceEvent = trace.Event

// QueryTrace is a snapshot of a recorder's timeline; Format renders it
// for terminals.
type QueryTrace = trace.Trace

// NewTraceRecorder returns a fresh coordinator-scope recorder with a
// random trace id.
func NewTraceRecorder() *TraceRecorder {
	return trace.New()
}

// MarkServerShutdown returns a context whose descendants report
// server-initiated cancellation: pass the result as an http.Server
// BaseContext and flip the probe to true before cancelling in-flight
// requests at a drain deadline, so abandoned queries answer 503
// (retryable) instead of 499 (client gone). cmd/lonad uses it for
// graceful shutdown.
func MarkServerShutdown(ctx context.Context, drained func() bool) context.Context {
	return server.MarkShutdown(ctx, drained)
}

// NewServer validates the inputs and returns a ready-to-serve Server:
// engine indexes prepared, materialized view built (undirected graphs),
// cache and metrics initialized.
func NewServer(g *Graph, scores []float64, h int, opts ServerOptions) (*Server, error) {
	return server.New(g, scores, h, opts)
}

// Coordinator executes queries across partition-local engines and merges
// the partial top-k lists with TA-style early termination — the same
// Run(ctx, Query) shape as Engine, Planner, and View, returning answers
// byte-identical to a single engine. Construct with NewLocalCoordinator
// (every shard in this process) or NewWorkerCoordinator (shards behind
// lonad -shard-worker processes). Server does this wiring itself via
// ServerOptions.Shards / ServerOptions.ShardWorkers.
type Coordinator = cluster.Coordinator

// CoordinatorOptions tunes the fan-out (concurrency, early-termination).
type CoordinatorOptions = cluster.Options

// NewLocalCoordinator partitions (g, scores, h) into parts shards
// in-process — BFS-grown, boundary-refined, each closed under h hops —
// and returns a coordinator fanning queries out across them.
func NewLocalCoordinator(g *Graph, scores []float64, h, parts int, opts CoordinatorOptions) (*Coordinator, error) {
	local, err := cluster.NewLocal(g, scores, h, parts)
	if err != nil {
		return nil, err
	}
	return cluster.NewCoordinator(local, opts), nil
}

// NewWorkerCoordinator dials lonad shard workers (one URL per shard, in
// shard-index order) and returns a coordinator fanning queries out to
// them over HTTP. The dial probes every worker's /v1/shard/health and
// fails fast on a mis-wired topology.
func NewWorkerCoordinator(ctx context.Context, workers []string, opts CoordinatorOptions) (*Coordinator, error) {
	transport, err := cluster.NewHTTP(ctx, workers, nil)
	if err != nil {
		return nil, err
	}
	return cluster.NewCoordinator(transport, opts), nil
}

// NewShardWorkerHandler builds shard index of the parts-way partitioning
// of (g, scores, h) and returns the HTTP handler serving it
// (/v1/shard/query, /v1/shard/bound, /v1/shard/scores, /v1/shard/edits,
// /v1/shard/health) — the worker half of the coordinator/worker
// protocol, which cmd/lonad's -shard-worker mode mounts as a daemon. The
// worker keeps the full graph alongside its shard, so structural edit
// batches fanned out by the coordinator re-derive the same successor
// topology on every process: each process applies the identical
// deterministic batch, extends the identical deterministic partitioning,
// and rebuilds its shard only when the batch touches its h-hop closure.
func NewShardWorkerHandler(g *Graph, scores []float64, h, parts, index int) (http.Handler, error) {
	worker, err := cluster.NewGraphWorker(g, scores, h, parts, index)
	if err != nil {
		return nil, err
	}
	worker.Shard().Engine().PrepareNeighborhoodIndex(0)
	return worker.Handler(), nil
}

// SnapshotReader is an open columnar snapshot: a versioned, checksummed,
// mmap-able serialization of a (graph, scores, h, N(v) index) quadruple
// (or one shard's closure of it). The accessors hand out views that alias
// the mapped file — zero-copy, so opening a multi-gigabyte snapshot costs
// milliseconds — which means the reader must stay open for as long as any
// engine built over those views is in use, and the views are read-only.
type SnapshotReader = snapshot.Reader

// OpenSnapshot maps the snapshot file at path (mmap on unix, a plain read
// elsewhere) and validates it end to end: magic, version, header/table/
// per-section CRC-32C checksums, canonical layout, and the structural CSR
// and index invariants. Close the reader only after every engine using
// its views is done.
func OpenSnapshot(path string) (*SnapshotReader, error) { return snapshot.Open(path) }

// WriteSnapshot persists (g, scores, h) plus the N(v) neighborhood index
// (built here if needed — snapshots exist to make the next boot free) as
// a whole-graph columnar snapshot at path, written atomically via temp
// file + rename. Boot from it with OpenSnapshot + NewEngineFromSnapshot,
// lonad -snapshot, or ServerOptions.Index.
func WriteSnapshot(path string, g *Graph, scores []float64, h int) error {
	w, err := snapshot.NewWriter(g, scores, h, graph.BuildNeighborhoodIndex(g, h, 0))
	if err != nil {
		return err
	}
	return w.WriteFile(path)
}

// NewEngineFromSnapshot stands an engine up over an open snapshot's
// mapped arrays — graph, scores, and N(v) index adopted without copying
// or rebuilding, so cold start is file-open cost, not index-build cost.
// The reader must outlive the engine.
func NewEngineFromSnapshot(r *SnapshotReader) (*Engine, error) {
	e, err := core.NewEngine(r.Graph(), r.Scores(), r.H())
	if err != nil {
		return nil, err
	}
	if ix := r.Index(); ix != nil {
		if err := e.AdoptNeighborhoodIndex(ix); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// ServerSnapshotSource describes the snapshot a server booted from, for
// ServerOptions.SnapshotSource (surfaced by /v1/stats and /metrics).
type ServerSnapshotSource = server.SnapshotSource

// Journal is an append-only, CRC-checked commit log recording every
// applied score-update and structural-edit batch, generation-stamped.
// Pass one to ServerOptions.Journal and the server journals each batch
// it applies and replays the suffix past its boot generation on
// construction — snapshot@g + replay(g..h) reconstructs generation h
// bit-identically. A torn tail (crash mid-append) is truncated at Open;
// mid-file corruption fails loudly.
type Journal = journal.Journal

// JournalAnchor names the snapshot a journal's history is anchored to:
// boot from Anchor.Snapshot, replay commits past Anchor.Generation.
type JournalAnchor = journal.Anchor

// OpenJournal opens (or creates) the commit journal in dir, recovering
// a torn tail if the last append was interrupted.
func OpenJournal(dir string) (*Journal, error) { return journal.Open(dir) }

// ReadJournalAnchor reports the snapshot anchor recorded in dir, with
// ok=false when no anchor has been written yet. It does not open the
// journal, so a daemon can decide its boot source before touching the
// log.
func ReadJournalAnchor(dir string) (JournalAnchor, bool, error) { return journal.ReadAnchor(dir) }

// NewShardWorkerHandlerFromSnapshot mounts one shard restored from a
// shard snapshot (lonagen -snapshot with -shards, or a previously
// persisted worker state) as the shard-protocol HTTP handler. Booting
// this way skips the partition + closure + subgraph + index build
// entirely, but the worker serves queries and score updates only:
// structural edit batches need the full graph, which the snapshot
// deliberately does not carry, so /v1/shard/edits rejects. The reader
// must stay open for the worker's lifetime.
//
// The worker records the snapshot as its boot provenance: GET
// /v1/shard/health reports the file path and resumes the generation
// counter from the snapshot's stamped generation, keeping it aligned
// with a coordinator restored from the same snapshot lineage.
func NewShardWorkerHandlerFromSnapshot(r *SnapshotReader) (http.Handler, error) {
	s, err := cluster.ShardFromSnapshot(r)
	if err != nil {
		return nil, err
	}
	w := cluster.NewWorker(s)
	w.SetProvenance(r.Path(), r.Generation())
	return w.Handler(), nil
}

// CollaborationNetwork simulates a co-authorship network in the shape of
// the paper's cond-mat 2005 dataset (~40k nodes / ~180k edges at scale 1).
func CollaborationNetwork(scale float64, seed int64) *Graph {
	return gen.Collaboration(gen.DatasetScale(scale), seed)
}

// CitationNetwork simulates a patent-citation network in the shape of the
// paper's cite75_99 dataset (scaled; see DESIGN.md §4).
func CitationNetwork(scale float64, seed int64) *Graph {
	return gen.Citation(gen.DatasetScale(scale), seed)
}

// IntrusionNetwork simulates a sparse hub-dominated IP contact network in
// the shape of the paper's proprietary IPsec dataset.
func IntrusionNetwork(scale float64, seed int64) *Graph {
	return gen.Intrusion(gen.DatasetScale(scale), seed)
}

// CommunityNetwork builds a planted-partition graph: communities of
// n/communities nodes each, with intra-community edge probability pin and
// inter-community probability pout. Node u belongs to community
// u % communities. Useful for module-structured domains such as gene
// co-expression networks.
func CommunityNetwork(n, communities int, pin, pout float64, seed int64) *Graph {
	return gen.PlantedPartition(n, communities, pin, pout, seed)
}

// MixtureScores builds the paper's evaluation relevance function: an
// exponential random assignment with the given blacking ratio r (fraction
// of nodes pinned to 1) blended with a random-walk smoothing over g.
func MixtureScores(g *Graph, blackingRatio float64, seed int64) []float64 {
	return relevance.Mixture(g, relevance.MixtureParams{BlackingRatio: blackingRatio}, seed)
}

// BinaryScores builds a sparse 0/1 relevance vector with the given
// blacking ratio.
func BinaryScores(n int, blackingRatio float64, seed int64) []float64 {
	return relevance.Binary(n, blackingRatio, seed)
}

// WriteGraph writes g in the binary CSR format.
func WriteGraph(w io.Writer, g *Graph) error { return netio.WriteBinaryGraph(w, g) }

// ReadGraph reads a binary CSR graph.
func ReadGraph(r io.Reader) (*Graph, error) { return netio.ReadBinaryGraph(r) }

// WriteScores writes a relevance vector in binary form.
func WriteScores(w io.Writer, scores []float64) error { return netio.WriteScores(w, scores) }

// ReadScores reads a binary relevance vector.
func ReadScores(r io.Reader) ([]float64, error) { return netio.ReadScores(r) }

// ReadGML parses a GML network file (the format public archives such as
// Newman's cond-mat 2005 use). ids maps dense node id → original GML id.
func ReadGML(r io.Reader) (g *Graph, ids []int, err error) { return netio.ReadGML(r) }

// WriteGML writes g as a GML file interoperable with standard tooling.
func WriteGML(w io.Writer, g *Graph) error { return netio.WriteGML(w, g) }
